type t = {
  config : Config.t;
  pathloss : Radio.Pathloss.t;
  positions : Geom.Vec2.t array;
  neighbors : Neighbor.t list array;
  power : float array;
  boundary : bool array;
}

let nb_nodes t = Array.length t.positions

let nalpha t =
  let g = Graphkit.Digraph.create (nb_nodes t) in
  Array.iteri
    (fun u ns ->
      List.iter (fun (n : Neighbor.t) -> Graphkit.Digraph.add_edge g u n.id) ns)
    t.neighbors;
  g

let closure t = Graphkit.Digraph.symmetric_closure (nalpha t)

let core t = Graphkit.Digraph.symmetric_core (nalpha t)

let radius_in t g =
  Array.mapi
    (fun u pos_u ->
      Graphkit.Ugraph.fold_neighbors g u ~init:0. ~f:(fun acc v ->
          Float.max acc (Geom.Vec2.dist pos_u t.positions.(v))))
    t.positions

let reach_power_in t g =
  Array.map
    (fun r -> if r = 0. then 0. else Radio.Pathloss.power_for_distance t.pathloss r)
    (radius_in t g)

let out_radius t =
  Array.mapi
    (fun u pos_u ->
      List.fold_left
        (fun acc (n : Neighbor.t) ->
          Float.max acc (Geom.Vec2.dist pos_u t.positions.(n.id)))
        0. t.neighbors.(u))
    t.positions

let has_gap t u =
  Geom.Dirset.has_gap ~alpha:t.config.Config.alpha
    (Neighbor.directions t.neighbors.(u))

let check_invariants t =
  let n = nb_nodes t in
  let max_power = Radio.Pathloss.max_power t.pathloss in
  let fail fmt = Fmt.kstr failwith fmt in
  if Array.length t.neighbors <> n || Array.length t.power <> n
     || Array.length t.boundary <> n
  then fail "Discovery: array length mismatch";
  for u = 0 to n - 1 do
    let rec sorted = function
      | [] | [ _ ] -> true
      | a :: (b :: _ as rest) ->
          Neighbor.compare_by_link_power a b <= 0 && sorted rest
    in
    if not (sorted t.neighbors.(u)) then fail "Discovery: node %d unsorted" u;
    List.iter
      (fun (nb : Neighbor.t) ->
        if nb.id = u then fail "Discovery: node %d lists itself" u;
        if nb.id < 0 || nb.id >= n then fail "Discovery: node %d bad id" u)
      t.neighbors.(u);
    if t.power.(u) <= 0. || t.power.(u) > max_power *. (1. +. 1e-9) then
      fail "Discovery: node %d power %g out of range" u t.power.(u);
    if t.boundary.(u) then begin
      if t.power.(u) < max_power *. (1. -. 1e-9) then
        fail "Discovery: boundary node %d below max power" u
    end
    else if has_gap t u then fail "Discovery: non-boundary node %d has a gap" u
  done
