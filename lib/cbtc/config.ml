type growth =
  | Exact
  | Double of float
  | Mult of { p0 : float; factor : float }

type t = { alpha : float; growth : growth }

let validate_growth = function
  | Exact -> ()
  | Double p0 ->
      if p0 <= 0. then invalid_arg "Config: non-positive initial power"
  | Mult { p0; factor } ->
      if p0 <= 0. then invalid_arg "Config: non-positive initial power";
      if factor <= 1. then invalid_arg "Config: growth factor must exceed 1"

let make ?(growth = Exact) alpha =
  if alpha <= 0. || alpha > Geom.Angle.two_pi then
    invalid_arg "Config: alpha out of (0, 2pi]";
  validate_growth growth;
  { alpha; growth }

let v = make

let threshold_eps = 1e-9

let preserves_connectivity t = t.alpha <= Geom.Angle.five_pi_six +. threshold_eps

let allows_asymmetric_removal t =
  t.alpha <= Geom.Angle.two_pi_three +. threshold_eps

let stepped_powers ~p0 ~factor ~max_power =
  let rec build acc p =
    if p >= max_power then List.rev (max_power :: acc)
    else build (p :: acc) (p *. factor)
  in
  build [] p0

let power_steps t ~pathloss ~link_powers =
  let max_power = Radio.Pathloss.max_power pathloss in
  match t.growth with
  | Exact -> (
      match List.sort_uniq Float.compare link_powers with
      | [] -> [ max_power ]
      | steps -> steps)
  | Double p0 -> stepped_powers ~p0 ~factor:2. ~max_power
  | Mult { p0; factor } -> stepped_powers ~p0 ~factor ~max_power

let pp_growth ppf = function
  | Exact -> Fmt.string ppf "exact"
  | Double p0 -> Fmt.pf ppf "double(p0=%g)" p0
  | Mult { p0; factor } -> Fmt.pf ppf "mult(p0=%g, x%g)" p0 factor

let pp ppf t =
  Fmt.pf ppf "CBTC(alpha=%a, growth=%a)" Geom.Angle.pp t.alpha pp_growth
    t.growth
