(** Uniform spatial grid over node positions, stored in CSR form.

    Every geometric hot path of the system — oracle discovery, the
    simulated radio broadcast, the proximity baselines, the interference
    metric — needs "which nodes lie within distance [d] of here?".  A
    brute-force answer scans all [n] positions, making whole-network
    passes O(n²).  This index buckets nodes into square cells of side
    [range] (normally the maximum radio range [R]), so a query for
    radius [d <= range] probes only the 3x3 block of cells around the
    query point — O(occupancy) instead of O(n) — and larger radii probe
    proportionally larger blocks.

    Cell contents live in a CSR (compressed-sparse-row) layout: one
    flat [int array] of node ids grouped by cell, plus a per-cell
    offset array over a dense window of cells, built in two counting
    passes.  Queries therefore stream over contiguous int-array
    segments with no per-bucket allocation or pointer chasing, which is
    what lets a full discovery pass scale to n = 10⁵–10⁶ (see
    docs/PERFORMANCE.md, "Memory layout at scale").

    The grid holds its own copy of the positions; under mobility, keep
    it current with {!move}.  Cell crossings are {e in-place CSR edits}:
    every occupied cell keeps a little slack, a departure swap-pops from
    the cell's live prefix (O(1)) and an arrival appends into the slack —
    stealing one slot from the nearest non-full cell when the slack is
    exhausted — so sustained drift never degrades queries into
    hash-table chasing.  Only nodes that leave the dense cell window
    entirely park in a small overflow table, and a full two-pass rebuild
    (re-centering the window and restoring slack) runs only when that
    table grows past an O(n) threshold.

    {2 Exactness contract}

    {!fold_in_range}, {!iter_in_range} and {!exists_in_range} are
    {e prefilters}: they enumerate a superset of the nodes within [dist]
    of the query point (every node of a cell that intersects the padded
    bounding square, each exactly once, including a node sitting exactly
    at the query point).  Callers apply their own exact predicate —
    [Radio.Pathloss.in_range], [reaches], a strict inequality, … — to
    each candidate, so replacing a brute-force scan with a grid probe
    changes {e which pairs are examined}, never {e which pairs pass}.
    The probe square is padded by a relative and absolute [1e-9] slack,
    so predicates with the path-loss model's round-trip tolerances stay
    safe as long as [dist] mathematically bounds their support (see
    [Radio.Pathloss.reach_distance]).

    {!neighbors_within} is exact: it applies [Vec2.dist _ _ <= dist]
    itself and returns ids sorted in increasing order. *)

type t

(** Node count below which a brute-force O(n²) scan beats building and
    probing the index: at the paper's density a 3x3 probe block covers
    most of a small field, so the grid only re-examines almost everything
    with extra indirection.  Calibrated from [bench_out/perf.json]
    (crossovers between n = 125 and n = 170 for G_R, Yao and
    interference coverage in this container).  Grid-backed callers with
    a [?cutoff] parameter default to this value and fall back to their
    bit-identical brute kernels below it. *)
val default_brute_cutoff : int

(** [create ~range positions] indexes [positions] (copied) with cell
    side [range].
    @raise Invalid_argument when [range <= 0.] or not finite. *)
val create : range:float -> Vec2.t array -> t

val nb_nodes : t -> int

(** [cell_size t] is the cell side length ([range] at creation). *)
val cell_size : t -> float

(** [occupancy t] is the list of occupied-cell sizes, sorted in
    decreasing order — a deterministic summary of how clustered the
    indexed points are (used by the observability layer). *)
val occupancy : t -> int list

(** [position t u] is [u]'s current indexed position. *)
val position : t -> int -> Vec2.t

(** [move t u p] updates [u]'s position to [p], rebucketing it if it
    changed cell.  O(cell) per update: a cell crossing edits the CSR
    arrays in place (swap-pop from the old cell, append into the new
    cell's slack, worst case shifting one id per cell over a bounded
    scan for a free slot); a full rebuild only fires when too many nodes
    have left the dense cell window. *)
val move : t -> int -> Vec2.t -> unit

(** Mobility health of the index, for correlating query-latency spikes
    with rebuilds (see docs/DAEMON.md):
    [drifted] — cell-changing moves absorbed since the last rebuild
    (almost all of them in-place CSR edits); [overflow] — nodes
    currently parked in the out-of-window overflow table, normally 0
    under drift that stays inside the indexed area; [compactions] —
    {!move}-triggered full rebuilds since {!create}. *)
type health = { drifted : int; overflow : int; compactions : int }

(** [health t] is a constant-time snapshot of the counters above. *)
val health : t -> health

(** [fold_in_range t p ~dist ~init ~f] folds [f] over a superset of the
    node ids within [dist] of point [p] (see the exactness contract
    above); order is unspecified.  [dist < 0.] yields [init]. *)
val fold_in_range :
  t -> Vec2.t -> dist:float -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [iter_in_range t p ~dist f] is {!fold_in_range} for side effects. *)
val iter_in_range : t -> Vec2.t -> dist:float -> (int -> unit) -> unit

(** [exists_in_range t p ~dist f] holds when [f] holds for some candidate
    id; stops at the first hit. *)
val exists_in_range : t -> Vec2.t -> dist:float -> (int -> bool) -> bool

(** [neighbors_within t u ~dist] is the ids [v <> u] with
    [Vec2.dist (position t u) (position t v) <= dist], sorted in
    increasing order. *)
val neighbors_within : t -> int -> dist:float -> int list

(** [fold_neighbors_within t u ~dist ~init ~f] folds over the same exact
    neighbor set as {!neighbors_within} — the distance predicate is
    applied here, unlike {!fold_in_range} — but allocation-free and in
    unspecified order.  Use it on hot paths that do not need the sorted
    list. *)
val fold_neighbors_within :
  t -> int -> dist:float -> init:'a -> f:('a -> int -> 'a) -> 'a

(** [iter_neighbors_within t u ~dist f] is {!fold_neighbors_within} for
    side effects. *)
val iter_neighbors_within : t -> int -> dist:float -> (int -> unit) -> unit
