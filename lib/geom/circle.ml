type t = { center : Vec2.t; radius : float }

let make ~center ~radius =
  if radius < 0. then invalid_arg "Circle.make: negative radius";
  { center; radius }

let contains ?(eps = 1e-9) c p = Vec2.dist c.center p <= c.radius +. eps

let on_boundary ?(eps = 1e-9) c p =
  Float.abs (Vec2.dist c.center p -. c.radius) <= eps

let point_at c theta = Vec2.add c.center (Vec2.of_polar ~r:c.radius ~theta)

let intersect a b =
  let d = Vec2.dist a.center b.center in
  if d = 0. then []
  else if d > a.radius +. b.radius then []
  else if d < Float.abs (a.radius -. b.radius) then []
  else
    (* Distance from [a.center] to the chord's foot along the center line. *)
    let x =
      ((d *. d) +. (a.radius *. a.radius) -. (b.radius *. b.radius)) /. (2. *. d)
    in
    let h2 = (a.radius *. a.radius) -. (x *. x) in
    let axis = Vec2.direction ~from:a.center ~toward:b.center in
    let foot = Vec2.add a.center (Vec2.of_polar ~r:x ~theta:axis) in
    if h2 <= 0. then [ foot ]
    else
      let h = sqrt h2 in
      let perp = axis +. (Float.pi /. 2.) in
      let p1 = Vec2.add foot (Vec2.of_polar ~r:h ~theta:perp) in
      let p2 = Vec2.add foot (Vec2.of_polar ~r:(-.h) ~theta:perp) in
      let ang p = Vec2.direction ~from:a.center ~toward:p in
      if ang p1 <= ang p2 then [ p1; p2 ] else [ p2; p1 ]

let pp ppf c = Fmt.pf ppf "circle(%a, r=%g)" Vec2.pp c.center c.radius
