let pi = Float.pi

let two_pi = 2. *. pi

let five_pi_six = 5. *. pi /. 6.

let two_pi_three = 2. *. pi /. 3.

let pi_three = pi /. 3.

let normalize a =
  let r = Float.rem a two_pi in
  (* the shift of a tiny negative remainder can round up to two_pi
     itself (e.g. -1e-17 +. two_pi = two_pi), so the upper-bound check
     must happen after it, not in the same branch *)
  let r = if r < 0. then r +. two_pi else r in
  if r >= two_pi then 0. else r

let ccw_delta a b = normalize (b -. a)

let diff a b =
  let d = ccw_delta a b in
  if d > pi then two_pi -. d else d

let within a b ~half_width = diff a b <= half_width

let of_degrees d = d *. pi /. 180.

let to_degrees r = r *. 180. /. pi

let equal ?(eps = 1e-9) a b = diff a b <= eps

let pp ppf a = Fmt.pf ppf "%.4f rad (%.1f deg)" a (to_degrees a)
