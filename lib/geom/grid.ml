type t = {
  cell : float;
  positions : Vec2.t array;
  buckets : (int * int, int list) Hashtbl.t;
  keys : (int * int) array;  (* current cell of each node *)
}

let default_brute_cutoff = 200

(* Pad probe squares so that candidates sitting within the exact
   predicates' float tolerances (relative 1e-9 on powers in the radio
   model, plus ulp-level rounding of the power<->distance round trip)
   can never fall just outside the probed cells. *)
let probe_slack = 1e-9

let cell_key cell (p : Vec2.t) =
  ( int_of_float (Float.floor (p.x /. cell)),
    int_of_float (Float.floor (p.y /. cell)) )

let bucket_add t key u =
  let ids = match Hashtbl.find_opt t.buckets key with None -> [] | Some l -> l in
  Hashtbl.replace t.buckets key (u :: ids)

let bucket_remove t key u =
  match Hashtbl.find_opt t.buckets key with
  | None -> ()
  | Some ids -> (
      match List.filter (fun v -> v <> u) ids with
      | [] -> Hashtbl.remove t.buckets key
      | ids -> Hashtbl.replace t.buckets key ids)

let create ~range positions =
  if not (Float.is_finite range) || range <= 0. then
    invalid_arg "Grid.create: cell range must be positive and finite";
  let n = Array.length positions in
  let t =
    {
      cell = range;
      positions = Array.copy positions;
      buckets = Hashtbl.create (Stdlib.max 16 n);
      keys = Array.init n (fun u -> cell_key range positions.(u));
    }
  in
  for u = 0 to n - 1 do
    bucket_add t t.keys.(u) u
  done;
  t

let nb_nodes t = Array.length t.positions

let cell_size t = t.cell

(* Sorted descending so the result depends only on the multiset of
   bucket sizes, not on hash-table iteration order. *)
let occupancy t =
  Hashtbl.fold (fun _ ids acc -> List.length ids :: acc) t.buckets []
  |> List.sort (fun a b -> Int.compare b a)

let check t u =
  if u < 0 || u >= nb_nodes t then invalid_arg "Grid: node out of range"

let position t u =
  check t u;
  t.positions.(u)

let move t u p =
  check t u;
  t.positions.(u) <- p;
  let key = cell_key t.cell p in
  if key <> t.keys.(u) then begin
    bucket_remove t t.keys.(u) u;
    bucket_add t key u;
    t.keys.(u) <- key
  end

let probe_bounds t (p : Vec2.t) dist =
  let r = (dist *. (1. +. probe_slack)) +. probe_slack in
  let lo x = int_of_float (Float.floor ((x -. r) /. t.cell)) in
  let hi x = int_of_float (Float.floor ((x +. r) /. t.cell)) in
  (lo p.x, hi p.x, lo p.y, hi p.y)

let fold_in_range t p ~dist ~init ~f =
  if dist < 0. then init
  else begin
    let x0, x1, y0, y1 = probe_bounds t p dist in
    let acc = ref init in
    for cx = x0 to x1 do
      for cy = y0 to y1 do
        match Hashtbl.find_opt t.buckets (cx, cy) with
        | None -> ()
        | Some ids -> List.iter (fun u -> acc := f !acc u) ids
      done
    done;
    !acc
  end

let iter_in_range t p ~dist f =
  fold_in_range t p ~dist ~init:() ~f:(fun () u -> f u)

exception Found

let exists_in_range t p ~dist f =
  match iter_in_range t p ~dist (fun u -> if f u then raise_notrace Found) with
  | () -> false
  | exception Found -> true

let neighbors_within t u ~dist =
  check t u;
  let pu = t.positions.(u) in
  let ids =
    fold_in_range t pu ~dist ~init:[] ~f:(fun acc v ->
        if v <> u && Vec2.dist pu t.positions.(v) <= dist then v :: acc
        else acc)
  in
  List.sort Int.compare ids
