(* CSR cell storage with in-place mobility: node ids live in one flat
   [ids] array, grouped by cell; [start] gives each cell's slot range
   inside a dense rectangular window of cells.  Queries walk int-array
   segments instead of chasing hash-table buckets and list cells.

   Unlike a classic packed CSR, every occupied cell keeps a little
   spare capacity ([1 + len/4] slots of slack, assigned at rebuild
   time), so mobility is maintained {e in place}: removing a node
   swap-pops it from its cell's live prefix (O(1)) and inserting one
   appends into the cell's slack — and when a cell's slack is
   exhausted, one free slot is stolen from the nearest cell with spare
   capacity by sliding the segment boundaries between them ([make_room],
   one element moved per intermediate cell).  A full counting-pass
   rebuild only happens when slack cannot be found within
   [shift_limit] cells or too many nodes have left the dense window
   entirely — rare and amortized, where the previous design parked
   every drifted node in a hash-table side car until a whole-index
   compaction. *)

type t = {
  cell : float;
  positions : Vec2.t array;
  keys : (int * int) array;  (* current cell of each node *)
  (* dense window of cells covered by the CSR arrays *)
  mutable x0 : int;
  mutable y0 : int;
  mutable nx : int;
  mutable ny : int;
  mutable start : int array;
    (* length nx*ny + 1: cell c owns slots [start.(c), start.(c+1)) *)
  mutable len : int array;  (* live prefix length of each cell's range *)
  mutable ids : int array;  (* flat node ids plus per-cell slack slots *)
  mutable slot : int array;  (* node -> its index in ids, -1 when in overflow *)
  (* nodes whose cell lies outside the dense window *)
  overflow : (int * int, int list ref) Hashtbl.t;
  mutable n_overflow : int;
  mutable n_drifted : int;  (* cell-changing moves since the last rebuild *)
  mutable rebuild_at : int;  (* overflow population that forces a rebuild *)
  mutable n_compactions : int;  (* move-triggered rebuilds since create *)
}

let default_brute_cutoff = 200

(* Pad probe squares so that candidates sitting within the exact
   predicates' float tolerances (relative 1e-9 on powers in the radio
   model, plus ulp-level rounding of the power<->distance round trip)
   can never fall just outside the probed cells. *)
let probe_slack = 1e-9

(* How far [make_room] scans for a cell with spare capacity before
   giving up and letting the insert fall through to the overflow table.
   Bounds the worst-case cost of a single in-place insert. *)
let shift_limit = 128

let cell_key cell (p : Vec2.t) =
  ( int_of_float (Float.floor (p.x /. cell)),
    int_of_float (Float.floor (p.y /. cell)) )

let nb_nodes t = Array.length t.positions

let cell_size t = t.cell

let cell_index t kx ky = ((kx - t.x0) * t.ny) + (ky - t.y0)

let in_window t kx ky =
  kx >= t.x0 && kx - t.x0 < t.nx && ky >= t.y0 && ky - t.y0 < t.ny

let attach_overflow t u key =
  (match Hashtbl.find_opt t.overflow key with
  | Some l -> l := u :: !l
  | None -> Hashtbl.add t.overflow key (ref [ u ]));
  t.n_overflow <- t.n_overflow + 1

(* Rebuild the CSR arrays from the current keys in two counting passes,
   assigning fresh slack to every occupied cell.  The dense window is
   padded by one cell on each side (boundary jitter stays an in-place
   edit) and capped (pathological coordinate spreads would need more
   cells than nodes by orders of magnitude); past the cap all nodes
   live in the overflow table, which degrades to the plain hash-bucket
   behaviour with identical results. *)
let rebuild t =
  let n = nb_nodes t in
  Hashtbl.reset t.overflow;
  t.n_overflow <- 0;
  t.n_drifted <- 0;
  let dense_ok =
    n > 0
    && begin
         let minx = ref max_int and maxx = ref min_int in
         let miny = ref max_int and maxy = ref min_int in
         for u = 0 to n - 1 do
           let kx, ky = t.keys.(u) in
           if kx < !minx then minx := kx;
           if kx > !maxx then maxx := kx;
           if ky < !miny then miny := ky;
           if ky > !maxy then maxy := ky
         done;
         (* window size in float: the int product can overflow *)
         let w = float_of_int !maxx -. float_of_int !minx +. 3. in
         let h = float_of_int !maxy -. float_of_int !miny +. 3. in
         if w *. h > float_of_int (Stdlib.max 4096 (8 * n)) then false
         else begin
           let nx = !maxx - !minx + 3 and ny = !maxy - !miny + 3 in
           t.x0 <- !minx - 1;
           t.y0 <- !miny - 1;
           t.nx <- nx;
           t.ny <- ny;
           let ncells = nx * ny in
           let cnt = Array.make ncells 0 in
           for u = 0 to n - 1 do
             let kx, ky = t.keys.(u) in
             let c = cell_index t kx ky in
             cnt.(c) <- cnt.(c) + 1
           done;
           let start = Array.make (ncells + 1) 0 in
           for c = 0 to ncells - 1 do
             (* slack only for occupied cells: empty cells cost nothing
                and steal room from a neighbor if a node drifts in *)
             let pad = if cnt.(c) = 0 then 0 else 1 + (cnt.(c) / 4) in
             start.(c + 1) <- start.(c) + cnt.(c) + pad
           done;
           let ids = Array.make start.(ncells) (-1) in
           let fill = Array.make ncells 0 in
           for u = 0 to n - 1 do
             let kx, ky = t.keys.(u) in
             let c = cell_index t kx ky in
             let s = start.(c) + fill.(c) in
             fill.(c) <- fill.(c) + 1;
             ids.(s) <- u;
             t.slot.(u) <- s
           done;
           t.start <- start;
           t.len <- cnt;
           t.ids <- ids;
           true
         end
       end
  in
  if not dense_ok then begin
    t.x0 <- 0;
    t.y0 <- 0;
    t.nx <- 0;
    t.ny <- 0;
    t.start <- [| 0 |];
    t.len <- [||];
    t.ids <- [||];
    for u = 0 to n - 1 do
      t.slot.(u) <- -1;
      attach_overflow t u t.keys.(u)
    done
  end;
  t.rebuild_at <- t.n_overflow + Stdlib.max 64 (n / 8)

let create ~range positions =
  if not (Float.is_finite range) || range <= 0. then
    invalid_arg "Grid.create: cell range must be positive and finite";
  let n = Array.length positions in
  let t =
    {
      cell = range;
      positions = Array.copy positions;
      keys = Array.init n (fun u -> cell_key range positions.(u));
      x0 = 0;
      y0 = 0;
      nx = 0;
      ny = 0;
      start = [| 0 |];
      len = [||];
      ids = [||];
      slot = Array.make n (-1);
      overflow = Hashtbl.create 16;
      n_overflow = 0;
      n_drifted = 0;
      rebuild_at = 0;
      n_compactions = 0;
    }
  in
  rebuild t;
  t

(* Sorted descending so the result depends only on the multiset of
   bucket sizes, not on any iteration order.  Window cells read their
   live prefix length; overflow cells (disjoint from the window by
   construction) count their bucket. *)
let occupancy t =
  let acc = ref [] in
  for c = 0 to (t.nx * t.ny) - 1 do
    if t.len.(c) > 0 then acc := t.len.(c) :: !acc
  done;
  Hashtbl.iter (fun _ l -> acc := List.length !l :: !acc) t.overflow;
  List.sort (fun a b -> Int.compare b a) !acc

let check t u =
  if u < 0 || u >= nb_nodes t then invalid_arg "Grid: node out of range"

let position t u =
  check t u;
  t.positions.(u)

(* Unhook [u] from its current bucket: swap-pop from its cell's live
   prefix (O(1)), or unlink from the overflow table. *)
let detach t u =
  let s = t.slot.(u) in
  if s >= 0 then begin
    let kx, ky = t.keys.(u) in
    let c = cell_index t kx ky in
    let last = t.start.(c) + t.len.(c) - 1 in
    let w = t.ids.(last) in
    t.ids.(s) <- w;
    t.slot.(w) <- s;
    t.ids.(last) <- -1;
    t.len.(c) <- t.len.(c) - 1;
    t.slot.(u) <- -1
  end
  else begin
    match Hashtbl.find_opt t.overflow t.keys.(u) with
    | None -> ()
    | Some l ->
        l := List.filter (fun v -> v <> u) !l;
        if !l = [] then Hashtbl.remove t.overflow t.keys.(u);
        t.n_overflow <- t.n_overflow - 1
  end

(* Steal one free slot for cell [c]: scan outward (alternating sides)
   for the nearest cell with spare capacity, then slide the segment
   boundaries between it and [c] one slot toward [c].  Every cell
   strictly between the donor and [c] is full (the scan would have
   picked it otherwise), and a full segment "shifts" by moving a single
   element from one end to the freshly vacated slot at the other —
   cell-internal order carries no meaning — so the cost is the scan
   distance, not the occupancy.  Returns false when no donor exists
   within [shift_limit] cells. *)
let make_room t c =
  let ncells = t.nx * t.ny in
  let free e = t.len.(e) < t.start.(e + 1) - t.start.(e) in
  let rec find d =
    if d > shift_limit then -1
    else begin
      let r = c + d and l = c - d in
      if r < ncells && free r then r
      else if l >= 0 && free l then l
      else if r >= ncells && l < 0 then -1
      else find (d + 1)
    end
  in
  let d = find 1 in
  if d < 0 then false
  else begin
    if d > c then
      (* donor on the right: segments (c, d] shift right by one.  At
         each step the destination slot was vacated by the previous
         iteration (or is the donor's own slack). *)
      for e = d downto c + 1 do
        (if t.len.(e) > 0 then begin
           let src = t.start.(e) in
           let dst = t.start.(e) + t.len.(e) in
           let w = t.ids.(src) in
           t.ids.(dst) <- w;
           t.slot.(w) <- dst
         end);
        t.start.(e) <- t.start.(e) + 1
      done
    else
      (* donor on the left: segments (d, c] shift left by one *)
      for e = d + 1 to c do
        (if t.len.(e) > 0 then begin
           let src = t.start.(e) + t.len.(e) - 1 in
           let dst = t.start.(e) - 1 in
           let w = t.ids.(src) in
           t.ids.(dst) <- w;
           t.slot.(w) <- dst
         end);
        t.start.(e) <- t.start.(e) - 1
      done;
    true
  end

(* Append [u] to cell [(kx, ky)]'s live prefix.  False when the key is
   outside the dense window or no slack is reachable. *)
let insert t u kx ky =
  in_window t kx ky
  && begin
       let c = cell_index t kx ky in
       (t.len.(c) < t.start.(c + 1) - t.start.(c) || make_room t c)
       && begin
            let s = t.start.(c) + t.len.(c) in
            t.ids.(s) <- u;
            t.slot.(u) <- s;
            t.len.(c) <- t.len.(c) + 1;
            true
          end
     end

let move t u p =
  check t u;
  t.positions.(u) <- p;
  let (kx, ky) as key = cell_key t.cell p in
  if key <> t.keys.(u) then begin
    t.n_drifted <- t.n_drifted + 1;
    detach t u;
    t.keys.(u) <- key;
    if not (insert t u kx ky) then begin
      attach_overflow t u key;
      if t.n_overflow > t.rebuild_at then begin
        t.n_compactions <- t.n_compactions + 1;
        rebuild t
      end
    end
  end

type health = { drifted : int; overflow : int; compactions : int }

let health t =
  {
    drifted = t.n_drifted;
    overflow = t.n_overflow;
    compactions = t.n_compactions;
  }

let probe_bounds t (p : Vec2.t) dist =
  let r = (dist *. (1. +. probe_slack)) +. probe_slack in
  let lo x = int_of_float (Float.floor ((x -. r) /. t.cell)) in
  let hi x = int_of_float (Float.floor ((x +. r) /. t.cell)) in
  (lo p.x, hi p.x, lo p.y, hi p.y)

let fold_in_range t p ~dist ~init ~f =
  if dist < 0. then init
  else begin
    let cx0, cx1, cy0, cy1 = probe_bounds t p dist in
    let acc = ref init in
    let ny = t.ny in
    let has_overflow = t.n_overflow > 0 in
    for cx = cx0 to cx1 do
      let dx = cx - t.x0 in
      let in_x = dx >= 0 && dx < t.nx in
      for cy = cy0 to cy1 do
        (if in_x then begin
           let dy = cy - t.y0 in
           if dy >= 0 && dy < ny then begin
             let c = (dx * ny) + dy in
             let s = t.start.(c) in
             for i = s to s + t.len.(c) - 1 do
               acc := f !acc (Array.unsafe_get t.ids i)
             done
           end
         end);
        if has_overflow then
          match Hashtbl.find_opt t.overflow (cx, cy) with
          | Some l -> List.iter (fun u -> acc := f !acc u) !l
          | None -> ()
      done
    done;
    !acc
  end

(* Not the [fold_in_range] wrapper: this is the innermost loop of every
   grid-backed construction, so it calls [f] directly instead of paying
   a second closure indirection per enumerated id. *)
let iter_in_range t p ~dist f =
  if dist >= 0. then begin
    let cx0, cx1, cy0, cy1 = probe_bounds t p dist in
    let ny = t.ny in
    let has_overflow = t.n_overflow > 0 in
    for cx = cx0 to cx1 do
      let dx = cx - t.x0 in
      let in_x = dx >= 0 && dx < t.nx in
      for cy = cy0 to cy1 do
        (if in_x then begin
           let dy = cy - t.y0 in
           if dy >= 0 && dy < ny then begin
             let c = (dx * ny) + dy in
             let s = t.start.(c) in
             for i = s to s + t.len.(c) - 1 do
               f (Array.unsafe_get t.ids i)
             done
           end
         end);
        if has_overflow then
          match Hashtbl.find_opt t.overflow (cx, cy) with
          | Some l -> List.iter f !l
          | None -> ()
      done
    done
  end

exception Found

let exists_in_range t p ~dist f =
  match iter_in_range t p ~dist (fun u -> if f u then raise_notrace Found) with
  | () -> false
  | exception Found -> true

let fold_neighbors_within t u ~dist ~init ~f =
  check t u;
  let pu = t.positions.(u) in
  fold_in_range t pu ~dist ~init ~f:(fun acc v ->
      if v <> u && Vec2.dist pu t.positions.(v) <= dist then f acc v else acc)

let iter_neighbors_within t u ~dist f =
  fold_neighbors_within t u ~dist ~init:() ~f:(fun () v -> f v)

let neighbors_within t u ~dist =
  List.sort Int.compare
    (fold_neighbors_within t u ~dist ~init:[] ~f:(fun acc v -> v :: acc))
