(* CSR cell storage: node ids live in one flat [ids] array, grouped by
   cell; [off] gives each cell's segment inside a dense rectangular
   window of cells.  Queries walk int-array segments instead of chasing
   hash-table buckets and list cells.  Mobility is handled by
   tombstoning the moved id in place and parking it in a small [overflow]
   side table, compacted back into the flat layout lazily once enough
   nodes have drifted. *)

type t = {
  cell : float;
  positions : Vec2.t array;
  keys : (int * int) array;  (* current cell of each node *)
  (* dense window of cells covered by the CSR arrays *)
  mutable x0 : int;
  mutable y0 : int;
  mutable nx : int;
  mutable ny : int;
  mutable off : int array;  (* length nx*ny + 1: cell c owns ids.(off.(c) .. off.(c+1)-1) *)
  mutable ids : int array;  (* flat node ids; -1 marks a tombstone left by move *)
  mutable slot : int array;  (* node -> its index in ids, -1 when in overflow *)
  overflow : (int * int, int list ref) Hashtbl.t;
  mutable n_overflow : int;
  mutable n_tombstones : int;
  mutable compact_at : int;  (* rebuild once n_overflow + n_tombstones exceeds this *)
  mutable n_compactions : int;  (* move-triggered lazy rebuilds since create *)
}

let default_brute_cutoff = 200

(* Pad probe squares so that candidates sitting within the exact
   predicates' float tolerances (relative 1e-9 on powers in the radio
   model, plus ulp-level rounding of the power<->distance round trip)
   can never fall just outside the probed cells. *)
let probe_slack = 1e-9

let cell_key cell (p : Vec2.t) =
  ( int_of_float (Float.floor (p.x /. cell)),
    int_of_float (Float.floor (p.y /. cell)) )

let nb_nodes t = Array.length t.positions

let cell_size t = t.cell

let attach_overflow t u key =
  (match Hashtbl.find_opt t.overflow key with
  | Some l -> l := u :: !l
  | None -> Hashtbl.add t.overflow key (ref [ u ]));
  t.n_overflow <- t.n_overflow + 1

(* Rebuild the CSR arrays from the current keys in two counting passes.
   The dense window is capped (pathological coordinate spreads would
   need more cells than nodes by orders of magnitude); past the cap all
   nodes live in the overflow table, which degrades to the plain
   hash-bucket behaviour with identical results. *)
let rebuild t =
  let n = nb_nodes t in
  Hashtbl.reset t.overflow;
  t.n_overflow <- 0;
  t.n_tombstones <- 0;
  let dense_ok =
    n > 0
    && begin
         let minx = ref max_int and maxx = ref min_int in
         let miny = ref max_int and maxy = ref min_int in
         for u = 0 to n - 1 do
           let kx, ky = t.keys.(u) in
           if kx < !minx then minx := kx;
           if kx > !maxx then maxx := kx;
           if ky < !miny then miny := ky;
           if ky > !maxy then maxy := ky
         done;
         (* window size in float: the int product can overflow *)
         let w = float_of_int !maxx -. float_of_int !minx +. 1. in
         let h = float_of_int !maxy -. float_of_int !miny +. 1. in
         if w *. h > float_of_int (Stdlib.max 4096 (8 * n)) then false
         else begin
           let nx = !maxx - !minx + 1 and ny = !maxy - !miny + 1 in
           t.x0 <- !minx;
           t.y0 <- !miny;
           t.nx <- nx;
           t.ny <- ny;
           let ncells = nx * ny in
           let off = Array.make (ncells + 1) 0 in
           for u = 0 to n - 1 do
             let kx, ky = t.keys.(u) in
             let c = ((kx - t.x0) * ny) + (ky - t.y0) in
             off.(c + 1) <- off.(c + 1) + 1
           done;
           for c = 1 to ncells do
             off.(c) <- off.(c) + off.(c - 1)
           done;
           let cur = Array.sub off 0 ncells in
           let ids = Array.make n (-1) in
           for u = 0 to n - 1 do
             let kx, ky = t.keys.(u) in
             let c = ((kx - t.x0) * ny) + (ky - t.y0) in
             let s = cur.(c) in
             cur.(c) <- s + 1;
             ids.(s) <- u;
             t.slot.(u) <- s
           done;
           t.off <- off;
           t.ids <- ids;
           true
         end
       end
  in
  if not dense_ok then begin
    t.x0 <- 0;
    t.y0 <- 0;
    t.nx <- 0;
    t.ny <- 0;
    t.off <- [| 0 |];
    t.ids <- [||];
    for u = 0 to n - 1 do
      t.slot.(u) <- -1;
      attach_overflow t u t.keys.(u)
    done
  end;
  t.compact_at <- t.n_overflow + Stdlib.max 64 (n / 4)

let create ~range positions =
  if not (Float.is_finite range) || range <= 0. then
    invalid_arg "Grid.create: cell range must be positive and finite";
  let n = Array.length positions in
  let t =
    {
      cell = range;
      positions = Array.copy positions;
      keys = Array.init n (fun u -> cell_key range positions.(u));
      x0 = 0;
      y0 = 0;
      nx = 0;
      ny = 0;
      off = [| 0 |];
      ids = [||];
      slot = Array.make n (-1);
      overflow = Hashtbl.create 16;
      n_overflow = 0;
      n_tombstones = 0;
      compact_at = 0;
      n_compactions = 0;
    }
  in
  rebuild t;
  t

(* Sorted descending so the result depends only on the multiset of
   bucket sizes, not on any iteration order. *)
let occupancy t =
  let sizes =
    if t.n_overflow = 0 && t.n_tombstones = 0 then begin
      (* pristine layout: one linear pass over the CSR offsets *)
      let acc = ref [] in
      for c = 0 to (t.nx * t.ny) - 1 do
        let size = t.off.(c + 1) - t.off.(c) in
        if size > 0 then acc := size :: !acc
      done;
      !acc
    end
    else begin
      (* after moves: count by current cell key, one pass over nodes *)
      let counts = Hashtbl.create 64 in
      for u = 0 to nb_nodes t - 1 do
        match Hashtbl.find_opt counts t.keys.(u) with
        | Some r -> incr r
        | None -> Hashtbl.add counts t.keys.(u) (ref 1)
      done;
      Hashtbl.fold (fun _ r acc -> !r :: acc) counts []
    end
  in
  List.sort (fun a b -> Int.compare b a) sizes

let check t u =
  if u < 0 || u >= nb_nodes t then invalid_arg "Grid: node out of range"

let position t u =
  check t u;
  t.positions.(u)

let detach t u =
  let s = t.slot.(u) in
  if s >= 0 then begin
    t.ids.(s) <- -1;
    t.slot.(u) <- -1;
    t.n_tombstones <- t.n_tombstones + 1
  end
  else begin
    match Hashtbl.find_opt t.overflow t.keys.(u) with
    | None -> ()
    | Some l ->
        l := List.filter (fun v -> v <> u) !l;
        if !l = [] then Hashtbl.remove t.overflow t.keys.(u);
        t.n_overflow <- t.n_overflow - 1
  end

let move t u p =
  check t u;
  t.positions.(u) <- p;
  let key = cell_key t.cell p in
  if key <> t.keys.(u) then begin
    detach t u;
    t.keys.(u) <- key;
    attach_overflow t u key;
    if t.n_overflow + t.n_tombstones > t.compact_at then begin
      t.n_compactions <- t.n_compactions + 1;
      rebuild t
    end
  end

type health = { drifted : int; overflow : int; compactions : int }

let health t =
  {
    drifted = t.n_tombstones;
    overflow = t.n_overflow;
    compactions = t.n_compactions;
  }

let probe_bounds t (p : Vec2.t) dist =
  let r = (dist *. (1. +. probe_slack)) +. probe_slack in
  let lo x = int_of_float (Float.floor ((x -. r) /. t.cell)) in
  let hi x = int_of_float (Float.floor ((x +. r) /. t.cell)) in
  (lo p.x, hi p.x, lo p.y, hi p.y)

let fold_in_range t p ~dist ~init ~f =
  if dist < 0. then init
  else begin
    let cx0, cx1, cy0, cy1 = probe_bounds t p dist in
    let acc = ref init in
    let ny = t.ny in
    let has_overflow = t.n_overflow > 0 in
    for cx = cx0 to cx1 do
      let dx = cx - t.x0 in
      let in_x = dx >= 0 && dx < t.nx in
      for cy = cy0 to cy1 do
        (if in_x then begin
           let dy = cy - t.y0 in
           if dy >= 0 && dy < ny then begin
             let c = (dx * ny) + dy in
             for i = t.off.(c) to t.off.(c + 1) - 1 do
               let u = Array.unsafe_get t.ids i in
               if u >= 0 then acc := f !acc u
             done
           end
         end);
        if has_overflow then
          match Hashtbl.find_opt t.overflow (cx, cy) with
          | Some l -> List.iter (fun u -> acc := f !acc u) !l
          | None -> ()
      done
    done;
    !acc
  end

(* Not the [fold_in_range] wrapper: this is the innermost loop of every
   grid-backed construction, so it calls [f] directly instead of paying
   a second closure indirection per enumerated id. *)
let iter_in_range t p ~dist f =
  if dist >= 0. then begin
    let cx0, cx1, cy0, cy1 = probe_bounds t p dist in
    let ny = t.ny in
    let has_overflow = t.n_overflow > 0 in
    for cx = cx0 to cx1 do
      let dx = cx - t.x0 in
      let in_x = dx >= 0 && dx < t.nx in
      for cy = cy0 to cy1 do
        (if in_x then begin
           let dy = cy - t.y0 in
           if dy >= 0 && dy < ny then begin
             let c = (dx * ny) + dy in
             for i = t.off.(c) to t.off.(c + 1) - 1 do
               let u = Array.unsafe_get t.ids i in
               if u >= 0 then f u
             done
           end
         end);
        if has_overflow then
          match Hashtbl.find_opt t.overflow (cx, cy) with
          | Some l -> List.iter f !l
          | None -> ()
      done
    done
  end

exception Found

let exists_in_range t p ~dist f =
  match iter_in_range t p ~dist (fun u -> if f u then raise_notrace Found) with
  | () -> false
  | exception Found -> true

let fold_neighbors_within t u ~dist ~init ~f =
  check t u;
  let pu = t.positions.(u) in
  fold_in_range t pu ~dist ~init ~f:(fun acc v ->
      if v <> u && Vec2.dist pu t.positions.(v) <= dist then f acc v else acc)

let iter_neighbors_within t u ~dist f =
  fold_neighbors_within t u ~dist ~init:() ~f:(fun () v -> f v)

let neighbors_within t u ~dist =
  List.sort Int.compare
    (fold_neighbors_within t u ~dist ~init:[] ~f:(fun acc v -> v :: acc))
