(** Unions of closed arcs on the unit circle.

    An arc is a closed circular interval [\[start, start + len\]] with
    [0 <= len <= 2pi].  An arc set is kept in a canonical form: a sorted
    list of disjoint, non-touching arcs with starts in [\[0, 2pi)], or the
    distinguished full circle.

    Arc sets implement the paper's coverage operator
    [cover_alpha(dir) = { theta : exists theta' in dir, |theta - theta'| mod 2pi <= alpha/2 }]
    used by the shrink-back optimization: removing a discovered neighbor is
    allowed exactly when coverage is unchanged, i.e. when the removed
    neighbor's arc is contained in the union of the remaining arcs. *)

type arc = { start : float; len : float }

type t

val empty : t

val full : t

val is_empty : t -> bool

val is_full : t -> bool

(** [of_arcs arcs] is the canonical union of [arcs].  Arcs with negative
    length are rejected with [Invalid_argument]; arcs with length
    [>= 2pi] yield the full circle. *)
val of_arcs : arc list -> t

(** [of_directions ~alpha dirs] is the union of arcs of angular width
    [alpha] centered on each direction in [dirs] — the paper's
    [cover_alpha(dirs)]. *)
val of_directions : alpha:float -> float list -> t

(** [add t arc] is the union of [t] and the single [arc]. *)
val add : t -> arc -> t

(** [arcs t] lists the canonical arcs ([\[\]] for empty; a single
    [{start = 0.; len = 2pi}] for the full circle). *)
val arcs : t -> arc list

(** [total_length t] is the total angular measure covered. *)
val total_length : t -> float

(** [contains_angle ?eps t theta] holds when direction [theta] lies in the
    union (within tolerance [eps], default [1e-9]). *)
val contains_angle : ?eps:float -> t -> float -> bool

(** [contains_arc ?eps t arc] holds when the whole of [arc] lies in the
    union (within tolerance [eps]). *)
val contains_arc : ?eps:float -> t -> arc -> bool

(** [subsumes ?eps t u] holds when every arc of [u] is contained in [t]. *)
val subsumes : ?eps:float -> t -> t -> bool

(** [equal ?eps a b] holds when [a] and [b] cover the same set of
    directions (mutual subsumption). *)
val equal : ?eps:float -> t -> t -> bool

val pp : t Fmt.t
