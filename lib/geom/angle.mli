(** Angles on the unit circle, in radians.

    A {e direction} is an angle normalized to the half-open interval
    [\[0, 2pi)].  This module provides the circular arithmetic used by the
    CBTC gap and coverage tests. *)

val pi : float

val two_pi : float

(** The paper's tight connectivity threshold, 5pi/6. *)
val five_pi_six : float

(** The threshold below which asymmetric edge removal is sound, 2pi/3. *)
val two_pi_three : float

(** The pairwise-removal cone half-test threshold, pi/3. *)
val pi_three : float

(** [normalize a] maps [a] to the equivalent direction in [\[0, 2pi)]. *)
val normalize : float -> float

(** [diff a b] is the absolute circular difference between directions
    [a] and [b], in [\[0, pi\]]. *)
val diff : float -> float -> float

(** [ccw_delta a b] is the counterclockwise rotation taking direction [a]
    to direction [b], in [\[0, 2pi)]. *)
val ccw_delta : float -> float -> float

(** [within a b ~half_width] holds when the circular difference between
    [a] and [b] is at most [half_width]. *)
val within : float -> float -> half_width:float -> bool

val of_degrees : float -> float

val to_degrees : float -> float

(** [equal ?eps a b] compares two directions circularly: it holds when
    their circular difference is at most [eps] (default [1e-9]). *)
val equal : ?eps:float -> float -> float -> bool

val pp : float Fmt.t
