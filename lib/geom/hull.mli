(** Convex hulls (Andrew's monotone chain).

    Used to analyze {e boundary nodes}: a CBTC node that ends at maximum
    power with a cone gap is typically near the deployment's edge, and
    the convex hull makes that notion precise. *)

(** [convex_hull points] is the hull in counterclockwise order starting
    from the lowest-leftmost point, without repeating the first point.
    Collinear points on hull edges are excluded.  Degenerate inputs
    (fewer than 3 distinct points, or all collinear) return the extreme
    points found. *)
val convex_hull : Vec2.t list -> Vec2.t list

(** [hull_indices points] is the same computation returning indices into
    the input array. *)
val hull_indices : Vec2.t array -> int list

(** [contains hull p] — point-in-convex-polygon for a CCW hull (boundary
    counts as inside). *)
val contains : Vec2.t list -> Vec2.t -> bool
