type arc = { start : float; len : float }

(* Internal form: [Full], or a sorted list of disjoint closed intervals
   [(s, e)] with [0 <= s < e <= 2pi].  Arcs crossing the 0/2pi seam are
   always split there, which makes the representation canonical. *)
type t = Full | Ivals of (float * float) list

let two_pi = Angle.two_pi

let merge_eps = 1e-9

let empty = Ivals []

let full = Full

let is_empty = function Ivals [] -> true | Ivals _ | Full -> false

let is_full = function Full -> true | Ivals _ -> false

(* Split one arc into seam-free intervals. *)
let split_arc { start; len } =
  if len < 0. then invalid_arg "Arcset: negative arc length";
  if len = 0. then []
  else
    let s = Angle.normalize start in
    let e = s +. len in
    if e <= two_pi then [ (s, e) ] else [ (s, two_pi); (0., e -. two_pi) ]

let merge_sorted ivals =
  let rec go acc = function
    | [] -> List.rev acc
    | (s, e) :: rest -> (
        match acc with
        | (s0, e0) :: acc' when s <= e0 +. merge_eps ->
            go ((s0, Float.max e0 e) :: acc') rest
        | _ -> go ((s, e) :: acc) rest)
  in
  go [] ivals

let canonicalize ivals =
  let sorted = List.sort (fun (a, _) (b, _) -> Float.compare a b) ivals in
  match merge_sorted sorted with
  | [ (s, e) ] when s <= merge_eps && e >= two_pi -. merge_eps -> Full
  | merged -> Ivals merged

let of_arcs arc_list =
  if List.exists (fun a -> a.len >= two_pi) arc_list then Full
  else canonicalize (List.concat_map split_arc arc_list)

let of_directions ~alpha dirs =
  if alpha < 0. then invalid_arg "Arcset.of_directions: negative alpha";
  let half = alpha /. 2. in
  of_arcs (List.map (fun d -> { start = d -. half; len = alpha }) dirs)

let arcs = function
  | Full -> [ { start = 0.; len = two_pi } ]
  | Ivals ivals -> List.map (fun (s, e) -> { start = s; len = e -. s }) ivals

let add t arc =
  match t with Full -> Full | Ivals _ -> of_arcs (arc :: arcs t)

let total_length = function
  | Full -> two_pi
  | Ivals ivals -> List.fold_left (fun acc (s, e) -> acc +. (e -. s)) 0. ivals

let contains_angle ?(eps = 1e-9) t theta =
  match t with
  | Full -> true
  | Ivals ivals ->
      let th = Angle.normalize theta in
      let inside (s, e) =
        (s -. eps <= th && th <= e +. eps)
        || (s -. eps <= th +. two_pi && th +. two_pi <= e +. eps)
      in
      List.exists inside ivals

let contains_arc ?(eps = 1e-9) t arc =
  match t with
  | Full -> true
  | Ivals ivals ->
      let piece_inside (qs, qe) =
        List.exists (fun (s, e) -> s -. eps <= qs && qe <= e +. eps) ivals
      in
      if arc.len = 0. then contains_angle ~eps t arc.start
      else if arc.len >= two_pi then false
      else List.for_all piece_inside (split_arc arc)

let subsumes ?eps t u =
  match u with
  | Full -> is_full t
  | Ivals _ -> List.for_all (fun a -> contains_arc ?eps t a) (arcs u)

let equal ?eps a b = subsumes ?eps a b && subsumes ?eps b a

let pp ppf = function
  | Full -> Fmt.string ppf "<full circle>"
  | Ivals ivals ->
      let pp_ival ppf (s, e) = Fmt.pf ppf "[%.4f, %.4f]" s e in
      Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") pp_ival) ivals
