(** Sets of directions and the CBTC gap test.

    A node running CBTC(alpha) accumulates the directions of its discovered
    neighbors; the algorithm keeps growing power while there is an
    {e alpha-gap} — a maximal circular gap between consecutive directions
    strictly greater than [alpha], which is equivalent to the existence of
    a cone of degree [alpha] containing no neighbor (Section 2 of the
    paper). *)

(** [max_gap dirs] is the largest circular gap between consecutive
    directions of [dirs].  It is [2pi] when [dirs] has fewer than two
    distinct directions (the empty set and singletons leave the whole
    circle uncovered). *)
val max_gap : float list -> float

(** [has_gap ?eps ~alpha dirs] holds when [dirs] leaves some cone of degree
    [alpha] empty, i.e. when [max_gap dirs >= alpha - eps].  A gap of
    exactly [alpha] counts: per Theorem 2.1 the open cone spanning it
    contains no neighbor, so growth must still trigger.  The tolerance
    [eps] (default [1e-9]) puts near-boundary configurations on the
    conservative (keep-growing) side. *)
val has_gap : ?eps:float -> alpha:float -> float list -> bool

(** [max_gap_sorted dirs len] is {!max_gap} over the prefix
    [dirs.(0 .. len-1)], which the caller guarantees is sorted
    increasing, duplicate-free and already normalized — the invariant
    kept by the SoA discovery core, which inserts each new direction in
    place instead of re-sorting a list per power step.  Uses the exact
    float operations of {!max_gap}, so results are bit-identical. *)
val max_gap_sorted : float array -> int -> float

(** [has_gap_sorted ?eps ~alpha dirs len] is {!has_gap} over the same
    sorted-unique prefix. *)
val has_gap_sorted : ?eps:float -> alpha:float -> float array -> int -> bool

(** [max_gap_ba dirs len] / [has_gap_ba ?eps ~alpha dirs len]: the same
    sorted-prefix variants over a float64 [Bigarray.Array1] — the
    storage the SoA discovery core keeps its direction set in.
    Bit-identical to the list and [float array] paths. *)
val max_gap_ba :
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  float

val has_gap_ba :
  ?eps:float ->
  alpha:float ->
  (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t ->
  int ->
  bool

(** [widest_gap dirs] is [Some (start, width)] for the widest gap, where
    [start] is the direction at which the gap begins (going
    counterclockwise), or [None] when [dirs] is empty. *)
val widest_gap : float list -> (float * float) option

(** [cover ~alpha dirs] is the paper's coverage operator
    [cover_alpha(dirs)]: the set of directions within [alpha/2] of some
    member of [dirs]. *)
val cover : alpha:float -> float list -> Arcset.t

(** [covers_circle ?eps ~alpha dirs] holds when [cover ~alpha dirs] is the
    full circle; equivalent to [not (has_gap ~alpha dirs)] for nonempty
    [dirs]. *)
val covers_circle : ?eps:float -> alpha:float -> float list -> bool
