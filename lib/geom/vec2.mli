(** Two-dimensional points and vectors.

    All coordinates are floats; the plane is the standard Euclidean plane
    with [x] to the right and [y] upward.  Node positions throughout the
    library are values of this type. *)

type t = { x : float; y : float }

val make : float -> float -> t

val zero : t

val add : t -> t -> t

val sub : t -> t -> t

(** [scale k v] is the vector [v] multiplied component-wise by [k]. *)
val scale : float -> t -> t

val neg : t -> t

val dot : t -> t -> float

(** [cross a b] is the z-component of the 3-D cross product, i.e. the signed
    area of the parallelogram spanned by [a] and [b]. *)
val cross : t -> t -> float

val norm2 : t -> float

val norm : t -> float

val dist2 : t -> t -> float

(** [dist a b] is the Euclidean distance between [a] and [b]. *)
val dist : t -> t -> float

(** [angle_of v] is the angle of [v] in radians, normalized to [0, 2pi).
    [angle_of zero] is [0.]. *)
val angle_of : t -> float

(** [direction ~from ~toward] is the angle of the vector from [from] to
    [toward], normalized to [0, 2pi). *)
val direction : from:t -> toward:t -> float

(** [of_polar ~r ~theta] is the point at distance [r] from the origin in
    direction [theta]. *)
val of_polar : r:float -> theta:float -> t

(** [rotate theta v] rotates [v] counterclockwise by [theta] radians. *)
val rotate : float -> t -> t

(** [lerp a b t] is the point [(1-t)·a + t·b]. *)
val lerp : t -> t -> float -> t

(** [midpoint a b] is [lerp a b 0.5]. *)
val midpoint : t -> t -> t

(** [equal ?eps a b] holds when both coordinates differ by at most [eps]
    (default [1e-9]). *)
val equal : ?eps:float -> t -> t -> bool

val pp : t Fmt.t

val to_string : t -> string
