(** Circles in the plane.

    Used by the Theorem 2.4 counterexample construction (intersection
    points [s], [s'] of the two radius-R circles in Figure 5) and by
    visualization. *)

type t = { center : Vec2.t; radius : float }

val make : center:Vec2.t -> radius:float -> t

(** [contains ?eps c p] holds when [p] is inside or on [c]. *)
val contains : ?eps:float -> t -> Vec2.t -> bool

(** [on_boundary ?eps c p] holds when [p] is at distance [radius] from the
    center, within [eps]. *)
val on_boundary : ?eps:float -> t -> Vec2.t -> bool

(** [intersect a b] is the list of intersection points of the two circle
    boundaries: [\[\]] (disjoint or one inside the other, or identical),
    one point (tangency), or two points.  Two points are returned in
    order of increasing angle from [a]'s center. *)
val intersect : t -> t -> Vec2.t list

(** [point_at c theta] is the boundary point of [c] in direction [theta]
    from its center. *)
val point_at : t -> float -> Vec2.t

val pp : t Fmt.t
