(* Andrew's monotone chain over index arrays, so both entry points share
   one implementation. *)

let cross_of positions o a b =
  Vec2.cross (Vec2.sub positions.(a) positions.(o)) (Vec2.sub positions.(b) positions.(o))

let hull_indices positions =
  let n = Array.length positions in
  if n = 0 then []
  else begin
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        Stdlib.compare
          (positions.(a).Vec2.x, positions.(a).Vec2.y)
          (positions.(b).Vec2.x, positions.(b).Vec2.y))
      order;
    (* drop duplicate points *)
    let distinct =
      Array.to_list order
      |> List.fold_left
           (fun acc i ->
             match acc with
             | j :: _ when Vec2.equal ~eps:0. positions.(i) positions.(j) -> acc
             | _ -> i :: acc)
           []
      |> List.rev
    in
    match distinct with
    | [] | [ _ ] | [ _; _ ] -> distinct
    | _ ->
        let half direction =
          List.fold_left
            (fun acc p ->
              let rec pop = function
                | a :: (b :: _ as rest)
                  when direction *. cross_of positions b a p <= 0. ->
                    pop rest
                | acc -> acc
              in
              p :: pop acc)
            [] distinct
          |> List.rev
        in
        let lower = half 1. in
        let upper = half (-1.) in
        (* each half includes both endpoints; drop the last of each *)
        let trim l = List.filteri (fun i _ -> i < List.length l - 1) l in
        trim lower @ trim (List.rev upper)
  end

let convex_hull points =
  let arr = Array.of_list points in
  List.map (fun i -> arr.(i)) (hull_indices arr)

let contains hull p =
  match hull with
  | [] -> false
  | [ q ] -> Vec2.equal ~eps:1e-9 p q
  | _ ->
      let rec edges = function
        | a :: (b :: _ as rest) ->
            Vec2.cross (Vec2.sub b a) (Vec2.sub p a) >= -1e-9 && edges rest
        | [ last ] ->
            let first = List.hd hull in
            Vec2.cross (Vec2.sub first last) (Vec2.sub p last) >= -1e-9
        | [] -> true
      in
      edges hull
