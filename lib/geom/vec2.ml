type t = { x : float; y : float }

let make x y = { x; y }

let zero = { x = 0.; y = 0. }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let scale k v = { x = k *. v.x; y = k *. v.y }

let neg v = { x = -.v.x; y = -.v.y }

let dot a b = (a.x *. b.x) +. (a.y *. b.y)

let cross a b = (a.x *. b.y) -. (a.y *. b.x)

let norm2 v = dot v v

let norm v = sqrt (norm2 v)

let dist2 a b = norm2 (sub b a)

let dist a b = sqrt (dist2 a b)

let angle_of v =
  if v.x = 0. && v.y = 0. then 0.
  else
    let a = Float.atan2 v.y v.x in
    if a < 0. then a +. (2. *. Float.pi) else a

let direction ~from ~toward = angle_of (sub toward from)

let of_polar ~r ~theta = { x = r *. cos theta; y = r *. sin theta }

let rotate theta v =
  let c = cos theta and s = sin theta in
  { x = (c *. v.x) -. (s *. v.y); y = (s *. v.x) +. (c *. v.y) }

let lerp a b t = add (scale (1. -. t) a) (scale t b)

let midpoint a b = lerp a b 0.5

let equal ?(eps = 1e-9) a b =
  Float.abs (a.x -. b.x) <= eps && Float.abs (a.y -. b.y) <= eps

let pp ppf v = Fmt.pf ppf "(%g, %g)" v.x v.y

let to_string v = Fmt.str "%a" pp v
