(** Cones in the plane, as used throughout the paper's proofs.

    [cone(u, alpha, v)] is the cone of degree [alpha] with apex [u],
    bisected by the ray from [u] through [v] (Figure 3 of the paper). *)

type t = { apex : Vec2.t; alpha : float; axis : float }

(** [make ~apex ~alpha ~toward] is the cone of degree [alpha] at [apex]
    bisected by the ray toward the point [toward].
    @raise Invalid_argument if [toward] coincides with [apex]. *)
val make : apex:Vec2.t -> alpha:float -> toward:Vec2.t -> t

(** [of_axis ~apex ~alpha ~axis] builds a cone directly from an axis
    direction. *)
val of_axis : apex:Vec2.t -> alpha:float -> axis:float -> t

(** [mem ?eps cone p] holds when [p] lies inside the (closed) cone.  The
    apex itself is not a member. *)
val mem : ?eps:float -> t -> Vec2.t -> bool

(** [mem_dir ?eps cone theta] holds when direction [theta] from the apex
    lies within the cone's angular extent. *)
val mem_dir : ?eps:float -> t -> float -> bool

val pp : t Fmt.t
