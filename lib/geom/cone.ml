type t = { apex : Vec2.t; alpha : float; axis : float }

let of_axis ~apex ~alpha ~axis =
  if alpha < 0. then invalid_arg "Cone: negative alpha";
  { apex; alpha; axis = Angle.normalize axis }

let make ~apex ~alpha ~toward =
  if Vec2.equal ~eps:0. apex toward then
    invalid_arg "Cone.make: axis point coincides with apex";
  of_axis ~apex ~alpha ~axis:(Vec2.direction ~from:apex ~toward)

let mem_dir ?(eps = 1e-9) t theta =
  Angle.diff t.axis theta <= (t.alpha /. 2.) +. eps

let mem ?eps t p =
  (not (Vec2.equal ~eps:0. t.apex p))
  && mem_dir ?eps t (Vec2.direction ~from:t.apex ~toward:p)

let pp ppf t =
  Fmt.pf ppf "cone(apex=%a, alpha=%a, axis=%a)" Vec2.pp t.apex Angle.pp t.alpha
    Angle.pp t.axis
