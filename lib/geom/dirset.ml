let sort_directions dirs =
  List.sort_uniq Float.compare (List.map Angle.normalize dirs)

let gaps_of_sorted sorted =
  match sorted with
  | [] -> []
  | first :: _ ->
      let rec consecutive acc = function
        | [] -> List.rev acc
        | [ last ] -> List.rev ((last, Angle.ccw_delta last first) :: acc)
        | a :: (b :: _ as rest) -> consecutive ((a, b -. a) :: acc) rest
      in
      consecutive [] sorted

let max_gap dirs =
  match sort_directions dirs with
  | [] | [ _ ] -> Angle.two_pi
  | sorted ->
      List.fold_left (fun acc (_, g) -> Float.max acc g) 0. (gaps_of_sorted sorted)

let widest_gap dirs =
  match sort_directions dirs with
  | [] -> None
  | [ d ] -> Some (d, Angle.two_pi)
  | sorted ->
      let best =
        List.fold_left
          (fun (bs, bg) (s, g) -> if g > bg then (s, g) else (bs, bg))
          (0., -1.) (gaps_of_sorted sorted)
      in
      Some best

(* Theorem 2.1 requires a neighbor in every cone of degree alpha, so a
   gap of exactly alpha is already too wide: the open cone spanning it
   is empty.  The comparison is therefore >= (up to eps, on the
   conservative side: near-boundary gaps count as gaps and trigger
   growth rather than being waved through). *)
let has_gap ?(eps = 1e-9) ~alpha dirs = max_gap dirs >= alpha -. eps

(* Array variants over an already sorted-unique prefix [dirs.(0..len-1)]
   of normalized directions, for callers that maintain the set
   incrementally (the SoA discovery core).  Same float operations as the
   list path above — consecutive [b -. a] plus the [ccw_delta] wrap — so
   the results are bit-identical. *)
let max_gap_sorted dirs len =
  if len <= 1 then Angle.two_pi
  else begin
    let best = ref (Angle.ccw_delta dirs.(len - 1) dirs.(0)) in
    for i = 0 to len - 2 do
      let g = dirs.(i + 1) -. dirs.(i) in
      if g > !best then best := g
    done;
    !best
  end

let has_gap_sorted ?(eps = 1e-9) ~alpha dirs len =
  max_gap_sorted dirs len >= alpha -. eps

(* Same again over a float64 Bigarray prefix — the storage the SoA core
   actually keeps its sorted directions in.  Identical float operations,
   so all three representations agree bit for bit. *)
let max_gap_ba (dirs : (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t) len =
  if len <= 1 then Angle.two_pi
  else begin
    let get = Bigarray.Array1.unsafe_get dirs in
    let best = ref (Angle.ccw_delta (get (len - 1)) (get 0)) in
    for i = 0 to len - 2 do
      let g = get (i + 1) -. get i in
      if g > !best then best := g
    done;
    !best
  end

let has_gap_ba ?(eps = 1e-9) ~alpha dirs len = max_gap_ba dirs len >= alpha -. eps

let cover ~alpha dirs = Arcset.of_directions ~alpha dirs

let covers_circle ?eps ~alpha dirs =
  match dirs with [] -> false | _ :: _ -> not (has_gap ?eps ~alpha dirs)
