(** Slotted-ALOHA medium access with geometric interference.

    The paper's second motivation made operational: in each time slot,
    every node independently transmits with probability [attempt_prob]
    to a uniformly chosen topology neighbor, at its configured power
    (its per-node radius).  A reception fails when the receiver is
    itself transmitting or lies inside the disk of {e any other}
    concurrent transmitter.  Smaller radii mean fewer collisions, so a
    controlled topology carries more goodput at equal offered load —
    this module measures exactly that. *)

type params = {
  attempt_prob : float;  (** per-slot transmission probability *)
  slots : int;
}

val default_params : params

type result = {
  offered : int;  (** transmissions attempted *)
  delivered : int;  (** receptions that survived interference *)
  collisions : int;  (** receptions destroyed by interference *)
  busy_receiver : int;  (** receiver was transmitting itself *)
  goodput : float;  (** delivered per node per slot *)
}

(** [run prng positions ~radius ~graph params] simulates [params.slots]
    slots.  Nodes with no topology neighbor never transmit.
    @raise Invalid_argument on inconsistent array sizes or bad params. *)
val run :
  Prng.t ->
  Geom.Vec2.t array ->
  radius:float array ->
  graph:Graphkit.Ugraph.t ->
  params ->
  result
