type params = { attempt_prob : float; slots : int }

let default_params = { attempt_prob = 0.05; slots = 2000 }

type result = {
  offered : int;
  delivered : int;
  collisions : int;
  busy_receiver : int;
  goodput : float;
}

let run prng positions ~radius ~graph params =
  let n = Array.length positions in
  if Array.length radius <> n || Graphkit.Ugraph.nb_nodes graph <> n then
    invalid_arg "Aloha.run: size mismatch";
  if params.attempt_prob < 0. || params.attempt_prob > 1. then
    invalid_arg "Aloha.run: attempt_prob out of [0,1]";
  if params.slots < 0 then invalid_arg "Aloha.run: negative slots";
  let neighbors = Array.init n (fun u -> Array.of_list (Graphkit.Ugraph.neighbors graph u)) in
  let offered = ref 0 in
  let delivered = ref 0 in
  let collisions = ref 0 in
  let busy_receiver = ref 0 in
  (* per-slot scratch: the transmission each node makes, if any *)
  let tx = Array.make n (-1) in
  for _slot = 1 to params.slots do
    for u = 0 to n - 1 do
      tx.(u) <-
        (if
           Array.length neighbors.(u) > 0
           && Prng.bool prng ~p:params.attempt_prob
         then begin
           incr offered;
           Prng.choose prng neighbors.(u)
         end
         else -1)
    done;
    for u = 0 to n - 1 do
      let dst = tx.(u) in
      if dst >= 0 then
        if tx.(dst) >= 0 then incr busy_receiver
        else begin
          (* interference: any other transmitter whose disk covers dst *)
          let jammed = ref false in
          for w = 0 to n - 1 do
            if
              (not !jammed) && w <> u && tx.(w) >= 0
              && Geom.Vec2.dist positions.(w) positions.(dst) <= radius.(w)
            then jammed := true
          done;
          if !jammed then incr collisions else incr delivered
        end
    done
  done;
  {
    offered = !offered;
    delivered = !delivered;
    collisions = !collisions;
    busy_receiver = !busy_receiver;
    goodput =
      (if n = 0 || params.slots = 0 then 0.
       else
         Stdlib.float_of_int !delivered
         /. Stdlib.float_of_int (n * params.slots));
  }
