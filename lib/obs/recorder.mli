(** Run recorder: typed counters, histograms, nested span tracing and a
    run manifest, emitted as JSON-lines plus an end-of-run summary.

    The disabled recorder {!nil} makes every operation a single branch,
    so instrumented code can keep its [?obs] parameter unconditionally.
    Output is deterministic by default: timing fields are only emitted
    when [create] was given a [clock], and serialization sorts counter
    and histogram keys.  Recorders are single-domain; parallel code
    records into per-trial recorders and merges them in seed order with
    {!merge_into}. *)

type t

val version : string
(** Library version stamped into every manifest and summary. *)

val schema : int
(** Trace/summary schema revision (see docs/OBSERVABILITY.md). *)

val nil : t
(** The disabled recorder: all operations are no-ops. *)

val create : ?clock:(unit -> float) -> unit -> t
(** Fresh enabled recorder.  When [clock] is given (e.g.
    [Unix.gettimeofday]), span events carry [t]/[dur_s] fields —
    and the output is no longer reproducible across runs. *)

val enabled : t -> bool

val now : t -> float option
(** Current clock reading, when the recorder is enabled and clocked.
    Lets instrumented code skip timing work on deterministic runs. *)

val incr : ?by:int -> t -> string -> unit
(** Bump a named counter (created on first use). *)

val observe : t -> string -> float -> unit
(** Add a sample to a named histogram (created on first use). *)

val set : t -> string -> Jsonl.t -> unit
(** Set a manifest field; insertion order is preserved, re-setting a
    key overwrites in place. *)

val set_int : t -> string -> int -> unit

val set_str : t -> string -> string -> unit

val set_float : t -> string -> float -> unit

val event : ?fields:(string * Jsonl.t) list -> t -> string -> unit
(** Record a point event at the current span depth. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span t name f] brackets [f] with span_begin/span_end events;
    exceptions still close the span. *)

val counter : t -> string -> int
(** Current value of a counter (0 when absent or disabled). *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val merge_into : into:t -> t -> unit
(** Fold [src]'s counters, histograms and events into [into] (manifest
    is kept from [into]).  Merging trial recorders in seed order makes
    the result independent of worker scheduling. *)

val trace_lines : t -> string list
(** JSON-lines trace: the manifest line followed by events, [seq]
    renumbered from 1.  Empty for {!nil}. *)

val summary_string : t -> string
(** One-line JSON summary: manifest, sorted counters and histograms,
    event count. *)

val write_trace : t -> out_channel -> unit

val write_summary : t -> out_channel -> unit
