(* Minimal JSON value type with a byte-stable serializer and a small
   parser.  The serializer is the determinism anchor of the whole
   observability layer: object keys are emitted in the order given by
   the caller (recorders sort them), floats are printed with the
   shortest representation that round-trips, and NaN/infinities map to
   [null] so no run can emit a token outside the JSON grammar.  The
   parser exists so the test suite can validate emitted trace lines
   without an external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* shortest decimal that parses back to the same float; deterministic
   because both printf and float_of_string are exactly specified *)
let float_repr f =
  let s = Printf.sprintf "%.12g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
      if Float.is_finite f then Buffer.add_string buf (float_repr f)
      else Buffer.add_string buf "null"
  | Str s -> escape buf s
  | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          write buf v)
        items;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape buf k;
          Buffer.add_char buf ':';
          write buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

exception Parse_error of string

(* Recursive-descent parser over the full line.  Strict where it
   matters for schema validation: no trailing garbage, no bare nan/inf
   tokens, strings must close. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while
      !pos < n
      && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false)
    do
      incr pos
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> incr pos
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      v
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> incr pos
        | '\\' ->
            incr pos;
            (if !pos >= n then fail "unterminated escape"
             else
               match s.[!pos] with
               | '"' -> Buffer.add_char buf '"'; incr pos
               | '\\' -> Buffer.add_char buf '\\'; incr pos
               | '/' -> Buffer.add_char buf '/'; incr pos
               | 'b' -> Buffer.add_char buf '\b'; incr pos
               | 'f' -> Buffer.add_char buf '\012'; incr pos
               | 'n' -> Buffer.add_char buf '\n'; incr pos
               | 'r' -> Buffer.add_char buf '\r'; incr pos
               | 't' -> Buffer.add_char buf '\t'; incr pos
               | 'u' ->
                   if !pos + 4 >= n then fail "truncated \\u escape";
                   let hex = String.sub s (!pos + 1) 4 in
                   let code =
                     try int_of_string ("0x" ^ hex)
                     with _ -> fail "bad \\u escape"
                   in
                   (* decode to UTF-8; surrogate pairs are not needed by
                      our own serializer, which only escapes C0 bytes *)
                   if code < 0x80 then Buffer.add_char buf (Char.chr code)
                   else if code < 0x800 then begin
                     Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end
                   else begin
                     Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                     Buffer.add_char buf
                       (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                     Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
                   end;
                   pos := !pos + 5
               | c -> fail (Printf.sprintf "bad escape \\%c" c));
            go ()
        | c -> Buffer.add_char buf c; incr pos; go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    while
      !pos < n
      &&
      match s.[!pos] with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      incr pos
    done;
    let tok = String.sub s start (!pos - start) in
    match int_of_string_opt tok with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt tok with
        | Some f when Float.is_finite f -> Float f
        | Some _ -> fail "non-finite number"
        | None -> fail (Printf.sprintf "bad number %S" tok))
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin incr pos; List [] end
        else begin
          let items = ref [ parse_value () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            items := parse_value () :: !items;
            skip_ws ()
          done;
          expect ']';
          List (List.rev !items)
        end
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin incr pos; Obj [] end
        else begin
          let field () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            (k, v)
          in
          let fields = ref [ field () ] in
          skip_ws ();
          while peek () = Some ',' do
            incr pos;
            fields := field () :: !fields;
            skip_ws ()
          done;
          expect '}';
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character %C" c)
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v
