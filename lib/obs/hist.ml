(* Fixed-layout power-of-two histogram.  The bucket for a sample is
   its binary exponent (frexp), clamped to the array — no allocation,
   no branching on configuration, and two histograms built from the
   same multiset of samples in the same order are structurally equal,
   which is what the cross-[-j] determinism contract needs. *)

type t = {
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;  (* meaningful only when count > 0 *)
  mutable vmax : float;
  buckets : int array;
}

let nbuckets = 128

(* exponent range roughly [-64, 63]; everything outside clamps *)
let offset = 64

let create () =
  { count = 0; sum = 0.; vmin = 0.; vmax = 0.; buckets = Array.make nbuckets 0 }

let bucket_of v =
  if v <= 0. || not (Float.is_finite v) then 0
  else
    let (_, e) = Float.frexp v in
    let i = e + offset in
    if i < 0 then 0 else if i >= nbuckets then nbuckets - 1 else i

let observe t v =
  if t.count = 0 then begin
    t.vmin <- v;
    t.vmax <- v
  end
  else begin
    if v < t.vmin then t.vmin <- v;
    if v > t.vmax then t.vmax <- v
  end;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  let i = bucket_of v in
  t.buckets.(i) <- t.buckets.(i) + 1

let count t = t.count

let sum t = t.sum

let merge_into ~into src =
  if src.count > 0 then begin
    if into.count = 0 then begin
      into.vmin <- src.vmin;
      into.vmax <- src.vmax
    end
    else begin
      if src.vmin < into.vmin then into.vmin <- src.vmin;
      if src.vmax > into.vmax then into.vmax <- src.vmax
    end;
    into.count <- into.count + src.count;
    into.sum <- into.sum +. src.sum;
    Array.iteri
      (fun i c -> if c > 0 then into.buckets.(i) <- into.buckets.(i) + c)
      src.buckets
  end

let to_json t =
  let sparse =
    let acc = ref [] in
    for i = nbuckets - 1 downto 0 do
      if t.buckets.(i) > 0 then
        acc := Jsonl.List [ Jsonl.Int (i - offset); Jsonl.Int t.buckets.(i) ] :: !acc
    done;
    !acc
  in
  Jsonl.Obj
    [
      ("count", Jsonl.Int t.count);
      ("sum", Jsonl.Float t.sum);
      ("min", if t.count = 0 then Jsonl.Null else Jsonl.Float t.vmin);
      ("max", if t.count = 0 then Jsonl.Null else Jsonl.Float t.vmax);
      ("log2_buckets", Jsonl.List sparse);
    ]
