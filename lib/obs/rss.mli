(** Peak resident set size of the current process.

    Run manifests report [peak_rss_kb] so scaling experiments record
    how much memory a run actually touched, not just how long it took.
    The value is read from ["VmHWM"] in [/proc/self/status] — a
    monotone high-water mark over the whole process lifetime, so it is
    sampled once at summary-write time and reflects the peak across
    every phase of the run (see docs/PERFORMANCE.md for the
    methodology). *)

(** [peak_rss_kb ()] is the process peak RSS in kB, or [None] where
    procfs is unavailable (non-Linux systems). *)
val peak_rss_kb : unit -> int option

(** [parse_vmhwm contents] extracts the [VmHWM] value in kB from the
    text of a [/proc/<pid>/status] file; [None] when the field is
    missing or malformed.  Exposed for testing on canned content. *)
val parse_vmhwm : string -> int option
