(* VmHWM ("high water mark") is the peak resident set size of the
   process, in kB, as reported by the Linux procfs status file.  The
   parser is separated from the file read so it can be tested on canned
   status content. *)

let parse_vmhwm contents =
  let parse_line line =
    match String.index_opt line ':' with
    | Some i when String.sub line 0 i = "VmHWM" -> begin
        let rest = String.sub line (i + 1) (String.length line - i - 1) in
        (* "   1234 kB" — take the first integer token *)
        let toks =
          String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) rest)
        in
        List.find_map
          (fun tok -> if tok = "" then None else int_of_string_opt tok)
          toks
      end
    | _ -> None
  in
  List.find_map parse_line (String.split_on_char '\n' contents)

let peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> None
  | ic ->
      let len = 4096 in
      let buf = Buffer.create len in
      (try
         let chunk = Bytes.create len in
         let rec pump () =
           let got = input ic chunk 0 len in
           if got > 0 then begin
             Buffer.add_subbytes buf chunk 0 got;
             pump ()
           end
         in
         pump ()
       with End_of_file -> ());
      close_in ic;
      parse_vmhwm (Buffer.contents buf)
