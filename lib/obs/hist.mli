(** Power-of-two histogram: count, sum, min, max plus sparse log2
    buckets keyed by binary exponent.  Not thread-safe; each recorder
    owns its histograms. *)

type t

val create : unit -> t

val observe : t -> float -> unit
(** Add a sample.  Non-positive and non-finite samples land in the
    lowest bucket; count/sum/min/max record the raw value. *)

val count : t -> int

val sum : t -> float

val merge_into : into:t -> t -> unit
(** Accumulate [src] into [into].  Merging in a fixed order yields
    bit-identical sums, which the [-j] determinism contract relies on. *)

val to_json : t -> Jsonl.t
(** [{"count":..,"sum":..,"min":..,"max":..,"log2_buckets":[[e,c],..]}];
    [min]/[max] are [null] when empty. *)
