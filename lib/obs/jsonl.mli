(** Minimal JSON values with a byte-stable serializer and a strict
    single-document parser.  Used for trace lines and run summaries;
    the parser backs schema validation in the test suite. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Serialize on one line with no spaces.  Object keys keep caller
    order; floats use the shortest round-tripping decimal; NaN and
    infinities are emitted as [null]. *)

val member : string -> t -> t option
(** [member k (Obj fields)] is the first binding of [k], if any. *)

exception Parse_error of string

val of_string : string -> t
(** Parse exactly one JSON document; raises {!Parse_error} on syntax
    errors, non-finite number tokens, or trailing garbage. *)
