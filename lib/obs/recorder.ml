(* The recorder is the single handle threaded through the stack.  Two
   invariants shape the design:

   - Disabled must be near-free: [nil] is a constant constructor, every
     operation starts with a [Nil] match, and call sites pay one branch
     and no allocation.

   - Output must be byte-identical for every [-j]: timing fields exist
     only when the caller supplies a [clock] (the CLI default is
     clockless), object keys are sorted at serialization time, and
     parallel code records into per-trial recorders that the submitter
     merges in seed order.

   A recorder is single-domain by construction (one per trial, or the
   root used sequentially); nothing here takes a lock. *)

let version = "0.4.0"

let schema = 1

type event =
  | Span_begin of { name : string; depth : int; t : float option }
  | Span_end of { name : string; depth : int; dur_s : float option }
  | Point of {
      name : string;
      depth : int;
      fields : (string * Jsonl.t) list;
    }

type active = {
  counters : (string, int ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
  mutable manifest : (string * Jsonl.t) list;  (* reversed insertion order *)
  mutable events : event list;  (* reversed *)
  mutable depth : int;
  clock : (unit -> float) option;
}

type t = Nil | Active of active

let nil = Nil

let create ?clock () =
  Active
    {
      counters = Hashtbl.create 32;
      hists = Hashtbl.create 16;
      manifest = [];
      events = [];
      depth = 0;
      clock;
    }

let enabled = function Nil -> false | Active _ -> true

let now = function
  | Active { clock = Some c; _ } -> Some (c ())
  | Active { clock = None; _ } | Nil -> None

let incr ?(by = 1) t name =
  match t with
  | Nil -> ()
  | Active a -> (
      match Hashtbl.find_opt a.counters name with
      | Some r -> r := !r + by
      | None -> Hashtbl.add a.counters name (ref by))

let observe t name v =
  match t with
  | Nil -> ()
  | Active a -> (
      match Hashtbl.find_opt a.hists name with
      | Some h -> Hist.observe h v
      | None ->
          let h = Hist.create () in
          Hist.observe h v;
          Hashtbl.add a.hists name h)

let set t key v =
  match t with
  | Nil -> ()
  | Active a ->
      if List.mem_assoc key a.manifest then
        a.manifest <-
          List.map (fun (k, old) -> if k = key then (k, v) else (k, old)) a.manifest
      else a.manifest <- (key, v) :: a.manifest

let set_int t key i = set t key (Jsonl.Int i)

let set_str t key s = set t key (Jsonl.Str s)

let set_float t key f = set t key (Jsonl.Float f)

let event ?(fields = []) t name =
  match t with
  | Nil -> ()
  | Active a -> a.events <- Point { name; depth = a.depth; fields } :: a.events

let span t name f =
  match t with
  | Nil -> f ()
  | Active a ->
      let t0 = Option.map (fun c -> c ()) a.clock in
      a.events <- Span_begin { name; depth = a.depth; t = t0 } :: a.events;
      a.depth <- a.depth + 1;
      Fun.protect
        ~finally:(fun () ->
          a.depth <- a.depth - 1;
          let dur_s =
            match (a.clock, t0) with
            | Some c, Some t0 -> Some (c () -. t0)
            | _ -> None
          in
          a.events <- Span_end { name; depth = a.depth; dur_s } :: a.events)
        f

let counter t name =
  match t with
  | Nil -> 0
  | Active a -> (
      match Hashtbl.find_opt a.counters name with Some r -> !r | None -> 0)

let sorted_bindings tbl value =
  Hashtbl.fold (fun k v acc -> (k, value v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  match t with
  | Nil -> []
  | Active a -> sorted_bindings a.counters (fun r -> !r)

let merge_into ~into src =
  match (into, src) with
  | Nil, _ | _, Nil -> ()
  | Active dst, Active s ->
      List.iter
        (fun (k, r) -> incr ~by:!r into k)
        (List.sort (fun (a, _) (b, _) -> String.compare a b)
           (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.counters []));
      List.iter
        (fun (k, h) ->
          match Hashtbl.find_opt dst.hists k with
          | Some dh -> Hist.merge_into ~into:dh h
          | None ->
              let dh = Hist.create () in
              Hist.merge_into ~into:dh h;
              Hashtbl.add dst.hists k dh)
        (List.sort (fun (a, _) (b, _) -> String.compare a b)
           (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.hists []));
      (* source events, already newest-first, go on top so the merged
         chronological order is [into]'s events then [src]'s.  Depths
         are re-based at [dst]'s current depth, so a trial trace merged
         while the destination sits inside a span nests under it and
         the merged trace still validates (begin/end balance per
         depth). *)
      let rebase = function
        | Span_begin e -> Span_begin { e with depth = e.depth + dst.depth }
        | Span_end e -> Span_end { e with depth = e.depth + dst.depth }
        | Point e -> Point { e with depth = e.depth + dst.depth }
      in
      dst.events <-
        (if dst.depth = 0 then s.events else List.map rebase s.events)
        @ dst.events

let manifest_fields a =
  ("ev", Jsonl.Str "manifest")
  :: ("schema", Jsonl.Int schema)
  :: ("version", Jsonl.Str version)
  :: List.rev a.manifest

let event_json seq = function
  | Span_begin { name; depth; t } ->
      Jsonl.Obj
        (("ev", Jsonl.Str "span_begin")
        :: ("seq", Jsonl.Int seq)
        :: ("depth", Jsonl.Int depth)
        :: ("name", Jsonl.Str name)
        :: (match t with Some t -> [ ("t", Jsonl.Float t) ] | None -> []))
  | Span_end { name; depth; dur_s } ->
      Jsonl.Obj
        (("ev", Jsonl.Str "span_end")
        :: ("seq", Jsonl.Int seq)
        :: ("depth", Jsonl.Int depth)
        :: ("name", Jsonl.Str name)
        ::
        (match dur_s with
        | Some d -> [ ("dur_s", Jsonl.Float d) ]
        | None -> []))
  | Point { name; depth; fields } ->
      Jsonl.Obj
        [
          ("ev", Jsonl.Str "point");
          ("seq", Jsonl.Int seq);
          ("depth", Jsonl.Int depth);
          ("name", Jsonl.Str name);
          ("fields", Jsonl.Obj fields);
        ]

let trace_lines t =
  match t with
  | Nil -> []
  | Active a ->
      let events = List.rev a.events in
      Jsonl.to_string (Jsonl.Obj (manifest_fields a))
      :: List.mapi (fun i e -> Jsonl.to_string (event_json (i + 1) e)) events

let summary_json t =
  match t with
  | Nil -> Jsonl.Null
  | Active a ->
      Jsonl.Obj
        [
          ("schema", Jsonl.Int schema);
          ("version", Jsonl.Str version);
          ("manifest", Jsonl.Obj (List.rev a.manifest));
          ( "counters",
            Jsonl.Obj
              (List.map
                 (fun (k, v) -> (k, Jsonl.Int v))
                 (sorted_bindings a.counters (fun r -> !r))) );
          ( "histograms",
            Jsonl.Obj (sorted_bindings a.hists Hist.to_json) );
          ("events", Jsonl.Int (List.length a.events));
        ]

let summary_string t = Jsonl.to_string (summary_json t)

let write_trace t oc =
  List.iter
    (fun line ->
      output_string oc line;
      output_char oc '\n')
    (trace_lines t)

let write_summary t oc =
  output_string oc (summary_string t);
  output_char oc '\n'
