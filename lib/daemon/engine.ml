(* Incrementally maintained CBTC state.

   Per-node discovery is a pure function of the live positions within
   radio range of the node, so an event can only change the cones of
   nodes within range R of a position it touches.  [apply] marks exactly
   those nodes dirty (grid probe + exact in-range predicate — a provable
   superset of the affected set, symmetric in the two endpoints) and
   [commit] regrows them; the equivalence of this incremental
   maintenance with a from-scratch recompute is the daemon's central
   invariant, checked by [check_full_equivalence] and swept across
   seeded schedules in [Check.Explore.sweep_daemon].

   The engine is built for sustained streams over n = 10⁵–10⁶ nodes:

   - Regrowth runs through the flat SoA kernel ([Cbtc.Geo.grow_into],
     bit-identical to [grow_one]) with a reusable scratch per worker —
     no Neighbor.t lists, no per-step list rebuilding.
   - Cone state is flat: powers in a float64 Bigarray, each node's
     neighbors as one int row plus one float row of (link, dir, tag)
     triples.  Positions stay in the kernel's [Vec2.t array] layout —
     one authoritative copy shared with the spatial index and the
     kernel, no mirror to keep in sync.
   - Commits are sharded spatially: the dirty set is sorted by grid
     cell, so each pool chunk regrows a compact region (its grid probes
     hit the cells its siblings just warmed).  Every node writes only
     its own slots and the shard layout depends only on the dirty set,
     never on the pool size, so results are bit-identical at every -j.

   The engine owns a [Geom.Grid] kept current by [Geom.Grid.move] (an
   in-place CSR cell edit); the full-equivalence check rebuilds a fresh
   grid, so it also cross-checks the index's mobility path. *)

type stats = {
  mutable events : int;
  mutable moves : int;
  mutable leaves : int;
  mutable joins : int;
  mutable commits : int;  (* commit calls with at least one dirty node *)
  mutable regrown : int;  (* nodes regrown, incremental + full *)
  mutable full_recomputes : int;  (* watchdog trips *)
}

type fbuf = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let fget : fbuf -> int -> float = Bigarray.Array1.unsafe_get
let fset : fbuf -> int -> float -> unit = Bigarray.Array1.unsafe_set

(* Regrowing a dirty node costs the same per-node work as the full pass
   spends on that node — identical kernel, identical grid; the only
   incremental-path extras are the dirty-set sort and bookkeeping,
   which are negligible against the kernel (measured on the n=10k
   benchmark stream: wall time per regrown node agrees within a few
   percent between storm epochs, ~100% dirty, and full recomputes).
   A full recompute is therefore never cheaper than k < live regrowths;
   at k = live the two are the same target set, and the full pass
   additionally squashes any drift.  Hence 1.0: the watchdog trips
   exactly when the entire live population is dirty and the "fallback"
   is free. *)
let default_watchdog_frac = 1.0

type t = {
  config : Cbtc.Config.t;
  pathloss : Radio.Pathloss.t;
  (* non-trivial propagation environment, or [None] for the pure
     pathloss model (trivial envs are collapsed at [create], so sigma=0
     streams run the pre-env code bit for bit) *)
  env : Radio.Env.t option;
  schedule : Cbtc.Geo.schedule;
  positions : Geom.Vec2.t array;
  alive : bool array;
  (* per-node cone rows: ids.(u) sorted by (link power, id), and
     data.(u).(3r .. 3r+2) = that neighbor's (link power, dir, tag) *)
  nbr_ids : int array array;
  nbr_data : float array array;
  power : fbuf;
  boundary : bool array;
  grid : Geom.Grid.t;
  reach : float;  (* conservative probe radius for range R *)
  (* hoisted path-loss constants, spelled as the kernel spells them so
     the dirty-propagation link test below is float-identical to the
     kernel's absorption test *)
  pl_coeff : float;
  pl_exponent : float;
  reach_cap : float;  (* candidate admission cap at max power *)
  final_step : float;  (* stepped schedules' drain step; inf for Exact *)
  watchdog_frac : float;
  shards : int;  (* commit shard count; 0 = one per pool chunk *)
  scratch : Cbtc.Geo.scratch;  (* serial-path scratch, reused *)
  dirty : bool array;
  mutable dirty_list : int list;
  mutable live : int;
  stats : stats;
}

let nb_nodes t = Array.length t.positions

let live t = t.live

let stats t = t.stats

let alive t u = t.alive.(u)

let position t u = t.positions.(u)

let power t u = fget t.power u

let grid_health t = Geom.Grid.health t.grid

(* Regrow [u] through the scratch kernel and copy the discovered rows
   out.  Writes only u's slots, so concurrent calls on distinct nodes
   (the sharded commit) are race-free and order-independent. *)
let grow_node t s u =
  let alive_fn v = t.alive.(v) in
  let k, p, b =
    Cbtc.Geo.grow_into ~grid:t.grid ~alive:alive_fn ?env:t.env
      ~schedule:t.schedule s t.config t.pathloss t.positions u
  in
  let ids = Array.make k 0 in
  let data = if k = 0 then [||] else Array.make (3 * k) 0. in
  for r = 0 to k - 1 do
    ids.(r) <- Cbtc.Geo.row_id s r;
    data.(3 * r) <- Cbtc.Geo.row_link s r;
    data.((3 * r) + 1) <- Cbtc.Geo.row_dir s r;
    data.((3 * r) + 2) <- Cbtc.Geo.row_tag s r
  done;
  t.nbr_ids.(u) <- ids;
  t.nbr_data.(u) <- data;
  fset t.power u p;
  t.boundary.(u) <- b

(* Sort target nodes by grid cell (row-major), ties by id: each
   contiguous chunk of the sorted array is a compact spatial shard.
   The order is a pure function of positions and the target set. *)
let spatial_sort t targets =
  let cell = Geom.Grid.cell_size t.grid in
  let key u =
    let p = t.positions.(u) in
    ( int_of_float (Float.floor (p.Geom.Vec2.x /. cell)),
      int_of_float (Float.floor (p.Geom.Vec2.y /. cell)) )
  in
  Array.sort
    (fun u v ->
      let kxu, kyu = key u and kxv, kyv = key v in
      if kxu <> kxv then Int.compare kxu kxv
      else if kyu <> kyv then Int.compare kyu kyv
      else Int.compare u v)
    targets

let regrow ?pool t targets =
  let ntargets = Array.length targets in
  (match pool with
  | None ->
      for i = 0 to ntargets - 1 do
        grow_node t t.scratch targets.(i)
      done
  | Some pool ->
      spatial_sort t targets;
      (* disjoint slot writes: bit-identical for every pool size *)
      let chunk =
        if t.shards <= 0 then None
        else Some (Stdlib.max 1 ((ntargets + t.shards - 1) / t.shards))
      in
      Parallel.Pool.iter_chunks pool ?chunk ntargets (fun lo hi ->
          let s = Cbtc.Geo.scratch_create () in
          for i = lo to hi - 1 do
            grow_node t s targets.(i)
          done));
  t.stats.regrown <- t.stats.regrown + ntargets

let live_targets t =
  let acc = ref [] in
  for u = nb_nodes t - 1 downto 0 do
    if t.alive.(u) then acc := u :: !acc
  done;
  Array.of_list !acc

let create ?pool ?alive ?env ?(shards = 0) ~watchdog_frac config pathloss
    positions =
  if not (watchdog_frac >= 0.) then
    invalid_arg "Daemon.Engine.create: watchdog_frac must be >= 0";
  if shards < 0 then
    invalid_arg "Daemon.Engine.create: shards must be >= 0";
  let env =
    match env with
    | Some e when not (Radio.Env.is_trivial e) -> Some e
    | _ -> None
  in
  let n = Array.length positions in
  let alive =
    match alive with
    | None -> Array.make n true
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Daemon.Engine.create: alive/positions length mismatch";
        Array.copy a
  in
  let power =
    Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n
  in
  Bigarray.Array1.fill power 0.;
  let t =
    {
      config;
      pathloss;
      env;
      schedule = Cbtc.Geo.schedule_of config pathloss;
      positions = Array.copy positions;
      alive;
      nbr_ids = Array.make n [||];
      nbr_data = Array.make n [||];
      power;
      boundary = Array.make n false;
      grid = Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions;
      reach =
        (* with an env, the probe radius is the sigma-aware inflated
           one bounding the support of G_R^env *)
        (match env with
        | Some env -> Radio.Env.max_reach env
        | None ->
            Radio.Pathloss.reach_distance pathloss
              ~power:(Radio.Pathloss.max_power pathloss));
      pl_coeff = Radio.Pathloss.coeff pathloss;
      pl_exponent = Radio.Pathloss.exponent pathloss;
      reach_cap =
        Radio.Pathloss.reach_cap ~power:(Radio.Pathloss.max_power pathloss);
      final_step = Cbtc.Geo.schedule_final (Cbtc.Geo.schedule_of config pathloss);
      watchdog_frac;
      shards;
      scratch = Cbtc.Geo.scratch_create ();
      dirty = Array.make n false;
      dirty_list = [];
      live = Array.fold_left (fun k b -> if b then k + 1 else k) 0 alive;
      stats =
        {
          events = 0;
          moves = 0;
          leaves = 0;
          joins = 0;
          commits = 0;
          regrown = 0;
          full_recomputes = 0;
        };
    }
  in
  regrow ?pool t (live_targets t);
  t

let mark t u =
  if t.alive.(u) && not t.dirty.(u) then begin
    t.dirty.(u) <- true;
    t.dirty_list <- u :: t.dirty_list
  end

(* Mark every live node whose cone a change at [p] can affect.  The
   grid probe over-approximates with the max-power R-ball; the exact
   cut below is what makes dense streams incremental.

   A clean node [v]'s tracked state equals its converged state over the
   current intermediate world (inductively: every event so far left it
   unchanged).  The power walk absorbs a candidate iff its link power
   is <= v's stopping power [p_v], and schedule steps above [p_v] are
   never examined, so a candidate appearing at / disappearing from /
   changing link power at [link > p_v] on both sides of an event
   changes nothing about v's walk — v stays clean.  Therefore marking
   [link <= p_v] nodes covers every node the event can affect.  Two
   classes absorb beyond their stopping power and fall back to the
   candidate-admission cap (the full R-ball): boundary nodes (they
   drain every candidate at max power) and nodes converged exactly at a
   stepped schedule's final step (its drain may absorb links above the
   step value, see [Geo.schedule_final]).  The link is computed with
   the kernel's own float operations ([Geo.collect]'s spelling), so
   the cut is exact, not tolerance-based: marked = possibly affected,
   unmarked = provably identical — the equivalence sweeps check this
   float-exactly.

   Already-dirty nodes skip the test (their tracked power may be stale,
   but the dirty set is monotone within an epoch, so the induction
   above only ever consults clean nodes' powers). *)
(* [u] is the disturbed node and [p] the position of its disturbance
   (old or new); under an env the link power is the env's — computed
   with the kernel's own spelling (collect_env's sqrt-of-squares dist
   into [Radio.Env.link_power], whose excess is symmetric in the pair),
   so the cut stays exact, not tolerance-based, in both models. *)
let mark_around t u p =
  let pc = t.pl_coeff and pe = t.pl_exponent in
  let px = p.Geom.Vec2.x and py = p.Geom.Vec2.y in
  Geom.Grid.iter_in_range t.grid p ~dist:t.reach (fun v ->
      if t.alive.(v) && not t.dirty.(v) then begin
        let pv = t.positions.(v) in
        let dx = px -. pv.Geom.Vec2.x and dy = py -. pv.Geom.Vec2.y in
        let dist = sqrt ((dx *. dx) +. (dy *. dy)) in
        let link =
          match t.env with
          | Some env -> Radio.Env.link_power env ~u ~v ~pu:p ~pv ~dist
          | None -> pc *. (dist ** pe)
        in
        let pw = fget t.power v in
        let cut =
          if t.boundary.(v) || pw >= t.final_step then t.reach_cap else pw
        in
        if link <= cut then mark t v
      end)

let clear_node t u =
  t.nbr_ids.(u) <- [||];
  t.nbr_data.(u) <- [||];
  fset t.power u 0.;
  t.boundary.(u) <- false

let set_position t u p =
  t.positions.(u) <- p;
  Geom.Grid.move t.grid u p

let apply t (e : Event.t) =
  let u = e.node in
  if u < 0 || u >= nb_nodes t then
    invalid_arg "Daemon.Engine.apply: node out of range";
  t.stats.events <- t.stats.events + 1;
  match e.kind with
  | Event.Move p ->
      t.stats.moves <- t.stats.moves + 1;
      if t.alive.(u) then begin
        mark_around t u t.positions.(u);
        set_position t u p;
        mark_around t u p;
        mark t u
      end
      else
        (* dead nodes are tracked silently: nobody's cone sees them,
           but a later recovery must join at the right place *)
        set_position t u p
  | Event.Leave ->
      t.stats.leaves <- t.stats.leaves + 1;
      if t.alive.(u) then begin
        t.alive.(u) <- false;
        t.live <- t.live - 1;
        clear_node t u;
        mark_around t u t.positions.(u)
      end
  | Event.Join p ->
      t.stats.joins <- t.stats.joins + 1;
      if t.alive.(u) then begin
        (* duplicate join = a move *)
        mark_around t u t.positions.(u);
        set_position t u p;
        mark_around t u p;
        mark t u
      end
      else begin
        set_position t u p;
        t.alive.(u) <- true;
        t.live <- t.live + 1;
        mark_around t u p;
        mark t u
      end

let commit ?pool t =
  let ds = List.sort_uniq Int.compare t.dirty_list in
  List.iter (fun u -> t.dirty.(u) <- false) ds;
  t.dirty_list <- [];
  let ds = List.filter (fun u -> t.alive.(u)) ds in
  let k = List.length ds in
  if k = 0 then `Clean
  else begin
    t.stats.commits <- t.stats.commits + 1;
    let threshold =
      int_of_float (Float.ceil (t.watchdog_frac *. float_of_int t.live))
    in
    if t.live > 0 && k >= Stdlib.max 1 threshold then begin
      (* watchdog: the dirty set covers (nearly) the whole live
         population — recompute it in one shot and squash any drift *)
      t.stats.full_recomputes <- t.stats.full_recomputes + 1;
      let targets = live_targets t in
      regrow ?pool t targets;
      `Full (Array.length targets)
    end
    else begin
      regrow ?pool t (Array.of_list ds);
      `Incremental k
    end
  end

(* Expand node [u]'s flat rows back into the sorted Neighbor.t list the
   list-typed views present. *)
let neighbor_list t u =
  let ids = t.nbr_ids.(u) and data = t.nbr_data.(u) in
  List.init (Array.length ids) (fun r ->
      Cbtc.Neighbor.make ~id:ids.(r)
        ~dir:data.((3 * r) + 1)
        ~link_power:data.(3 * r)
        ~tag:data.((3 * r) + 2))

let discovery t =
  let n = nb_nodes t in
  {
    Cbtc.Discovery.config = t.config;
    pathloss = t.pathloss;
    positions = Array.copy t.positions;
    neighbors = Array.init n (fun u -> neighbor_list t u);
    power = Array.init n (fun u -> fget t.power u);
    boundary = Array.copy t.boundary;
  }

let topology t = Cbtc.Discovery.closure (discovery t)

let digest t =
  let b = Buffer.create (64 * nb_nodes t) in
  let f x = Buffer.add_int64_le b (Int64.bits_of_float x) in
  for u = 0 to nb_nodes t - 1 do
    Buffer.add_uint8 b (if t.alive.(u) then 1 else 0);
    f t.positions.(u).Geom.Vec2.x;
    f t.positions.(u).Geom.Vec2.y;
    f (fget t.power u);
    Buffer.add_uint8 b (if t.boundary.(u) then 1 else 0);
    let ids = t.nbr_ids.(u) and data = t.nbr_data.(u) in
    for r = 0 to Array.length ids - 1 do
      Buffer.add_int64_le b (Int64.of_int ids.(r));
      f data.(3 * r);
      f data.((3 * r) + 1);
      f data.((3 * r) + 2)
    done
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The central invariant: tracked state == from-scratch recompute over
   the tracked world.  The reference pass is the *list* kernel
   ([Cbtc.Geo.grow_one]) against a *fresh* grid, so it cross-checks both
   the incremental index against a clean build and the flat regrowth
   kernel against the list path.  Float-exact comparison is intentional
   — both sides run the identical per-node float computation on
   identical inputs. *)
let check_full_equivalence ?pool t =
  let grid = Geom.Grid.create ~range:(Radio.Pathloss.max_range t.pathloss) t.positions in
  let alive_fn v = t.alive.(v) in
  let n = nb_nodes t in
  let bad = Array.make n None in
  let check u =
    if t.alive.(u) then begin
      let nbs, p, b =
        Cbtc.Geo.grow_one ~grid ~alive:alive_fn ?env:t.env t.config t.pathloss
          t.positions u
      in
      let nb_eq (nb : Cbtc.Neighbor.t) r =
        nb.id = t.nbr_ids.(u).(r)
        && nb.link_power = t.nbr_data.(u).(3 * r)
        && nb.dir = t.nbr_data.(u).((3 * r) + 1)
        && nb.tag = t.nbr_data.(u).((3 * r) + 2)
      in
      let rec rows_eq r = function
        | [] -> r = Array.length t.nbr_ids.(u)
        | nb :: rest -> r < Array.length t.nbr_ids.(u) && nb_eq nb r && rows_eq (r + 1) rest
      in
      if p <> fget t.power u then
        bad.(u) <- Some (Printf.sprintf "node %d: power %.17g, full recompute %.17g" u (fget t.power u) p)
      else if b <> t.boundary.(u) then
        bad.(u) <- Some (Printf.sprintf "node %d: boundary %b, full recompute %b" u t.boundary.(u) b)
      else if not (rows_eq 0 nbs) then
        bad.(u) <- Some (Printf.sprintf "node %d: neighbor sets differ" u)
    end
    else if
      t.nbr_ids.(u) <> [||] || fget t.power u <> 0. || t.boundary.(u)
    then bad.(u) <- Some (Printf.sprintf "node %d: dead but has residual state" u)
  in
  (match pool with
  | None ->
      for u = 0 to n - 1 do
        check u
      done
  | Some pool ->
      Parallel.Pool.iter_chunks pool n (fun lo hi ->
          for u = lo to hi - 1 do
            check u
          done));
  match Array.find_map (fun x -> x) bad with
  | None -> Ok ()
  | Some m -> Error m
