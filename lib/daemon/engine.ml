(* Incrementally maintained CBTC state.

   Per-node discovery ([Cbtc.Geo.grow_one]) is a pure function of the live
   positions within radio range of the node, so an event can only change
   the cones of nodes within range R of a position it touches.  [apply]
   marks exactly those nodes dirty (grid probe + exact in-range
   predicate — a provable superset of the affected set, symmetric in the
   two endpoints) and [commit] regrows them; the equivalence of this
   incremental maintenance with a from-scratch recompute is the daemon's
   central invariant, checked by [check_full_equivalence] and swept
   across seeded schedules in [Check.Explore.sweep_daemon].

   The engine owns a [Geom.Grid] kept current by [Geom.Grid.move]; the
   full-equivalence check rebuilds a fresh grid, so it also cross-checks
   the index's tombstone/overflow mobility path. *)

type stats = {
  mutable events : int;
  mutable moves : int;
  mutable leaves : int;
  mutable joins : int;
  mutable commits : int;  (* commit calls with at least one dirty node *)
  mutable regrown : int;  (* nodes regrown, incremental + full *)
  mutable full_recomputes : int;  (* watchdog trips *)
}

type t = {
  config : Cbtc.Config.t;
  pathloss : Radio.Pathloss.t;
  positions : Geom.Vec2.t array;
  alive : bool array;
  neighbors : Cbtc.Neighbor.t list array;
  power : float array;
  boundary : bool array;
  grid : Geom.Grid.t;
  reach : float;  (* conservative probe radius for range R *)
  watchdog_frac : float;
  dirty : bool array;
  mutable dirty_list : int list;
  mutable live : int;
  stats : stats;
}

let nb_nodes t = Array.length t.positions

let live t = t.live

let stats t = t.stats

let alive t u = t.alive.(u)

let position t u = t.positions.(u)

let grid_health t = Geom.Grid.health t.grid

let regrow ?pool t targets =
  let alive_fn v = t.alive.(v) in
  let grow u =
    let nbs, p, b =
      Cbtc.Geo.grow_one ~grid:t.grid ~alive:alive_fn t.config t.pathloss
        t.positions u
    in
    t.neighbors.(u) <- nbs;
    t.power.(u) <- p;
    t.boundary.(u) <- b
  in
  (match pool with
  | None -> Array.iter grow targets
  | Some pool ->
      (* disjoint slot writes: bit-identical for every pool size *)
      Parallel.Pool.iter_chunks pool (Array.length targets) (fun lo hi ->
          for i = lo to hi - 1 do
            grow targets.(i)
          done));
  t.stats.regrown <- t.stats.regrown + Array.length targets

let live_targets t =
  let acc = ref [] in
  for u = nb_nodes t - 1 downto 0 do
    if t.alive.(u) then acc := u :: !acc
  done;
  Array.of_list !acc

let create ?pool ?alive ~watchdog_frac config pathloss positions =
  if not (watchdog_frac >= 0.) then
    invalid_arg "Daemon.Engine.create: watchdog_frac must be >= 0";
  let n = Array.length positions in
  let alive =
    match alive with
    | None -> Array.make n true
    | Some a ->
        if Array.length a <> n then
          invalid_arg "Daemon.Engine.create: alive/positions length mismatch";
        Array.copy a
  in
  let t =
    {
      config;
      pathloss;
      positions = Array.copy positions;
      alive;
      neighbors = Array.make n [];
      power = Array.make n 0.;
      boundary = Array.make n false;
      grid = Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions;
      reach =
        Radio.Pathloss.reach_distance pathloss
          ~power:(Radio.Pathloss.max_power pathloss);
      watchdog_frac;
      dirty = Array.make n false;
      dirty_list = [];
      live = Array.fold_left (fun k b -> if b then k + 1 else k) 0 alive;
      stats =
        {
          events = 0;
          moves = 0;
          leaves = 0;
          joins = 0;
          commits = 0;
          regrown = 0;
          full_recomputes = 0;
        };
    }
  in
  regrow ?pool t (live_targets t);
  t

let mark t u =
  if t.alive.(u) && not t.dirty.(u) then begin
    t.dirty.(u) <- true;
    t.dirty_list <- u :: t.dirty_list
  end

(* Mark every live node whose cone a change at [p] can affect: the grid
   probe over-approximates, the exact [in_range] predicate (symmetric in
   the endpoints) trims it to the true G_R neighborhood of [p]. *)
let mark_around t p =
  Geom.Grid.iter_in_range t.grid p ~dist:t.reach (fun v ->
      if
        t.alive.(v)
        && Radio.Pathloss.in_range t.pathloss
             ~dist:(Geom.Vec2.dist p t.positions.(v))
      then mark t v)

let clear_node t u =
  t.neighbors.(u) <- [];
  t.power.(u) <- 0.;
  t.boundary.(u) <- false

let set_position t u p =
  t.positions.(u) <- p;
  Geom.Grid.move t.grid u p

let apply t (e : Event.t) =
  let u = e.node in
  if u < 0 || u >= nb_nodes t then
    invalid_arg "Daemon.Engine.apply: node out of range";
  t.stats.events <- t.stats.events + 1;
  match e.kind with
  | Event.Move p ->
      t.stats.moves <- t.stats.moves + 1;
      if t.alive.(u) then begin
        mark_around t t.positions.(u);
        set_position t u p;
        mark_around t p;
        mark t u
      end
      else
        (* dead nodes are tracked silently: nobody's cone sees them,
           but a later recovery must join at the right place *)
        set_position t u p
  | Event.Leave ->
      t.stats.leaves <- t.stats.leaves + 1;
      if t.alive.(u) then begin
        t.alive.(u) <- false;
        t.live <- t.live - 1;
        clear_node t u;
        mark_around t t.positions.(u)
      end
  | Event.Join p ->
      t.stats.joins <- t.stats.joins + 1;
      if t.alive.(u) then begin
        (* duplicate join = a move *)
        mark_around t t.positions.(u);
        set_position t u p;
        mark_around t p;
        mark t u
      end
      else begin
        set_position t u p;
        t.alive.(u) <- true;
        t.live <- t.live + 1;
        mark_around t p;
        mark t u
      end

let commit ?pool t =
  let ds = List.sort_uniq Int.compare t.dirty_list in
  List.iter (fun u -> t.dirty.(u) <- false) ds;
  t.dirty_list <- [];
  let ds = List.filter (fun u -> t.alive.(u)) ds in
  let k = List.length ds in
  if k = 0 then `Clean
  else begin
    t.stats.commits <- t.stats.commits + 1;
    let threshold =
      int_of_float (Float.ceil (t.watchdog_frac *. float_of_int t.live))
    in
    if t.live > 0 && k >= Stdlib.max 1 threshold then begin
      (* watchdog: the dirty set is a large fraction of the network —
         a full recompute is no more work (within 1/frac) and squashes
         any drift in one shot *)
      t.stats.full_recomputes <- t.stats.full_recomputes + 1;
      let targets = live_targets t in
      regrow ?pool t targets;
      `Full (Array.length targets)
    end
    else begin
      regrow ?pool t (Array.of_list ds);
      `Incremental k
    end
  end

let discovery t =
  {
    Cbtc.Discovery.config = t.config;
    pathloss = t.pathloss;
    positions = Array.copy t.positions;
    neighbors = Array.copy t.neighbors;
    power = Array.copy t.power;
    boundary = Array.copy t.boundary;
  }

let topology t = Cbtc.Discovery.closure (discovery t)

let digest t =
  let b = Buffer.create (64 * nb_nodes t) in
  let f x = Buffer.add_int64_le b (Int64.bits_of_float x) in
  for u = 0 to nb_nodes t - 1 do
    Buffer.add_uint8 b (if t.alive.(u) then 1 else 0);
    f t.positions.(u).Geom.Vec2.x;
    f t.positions.(u).Geom.Vec2.y;
    f t.power.(u);
    Buffer.add_uint8 b (if t.boundary.(u) then 1 else 0);
    List.iter
      (fun (nb : Cbtc.Neighbor.t) ->
        Buffer.add_int64_le b (Int64.of_int nb.id);
        f nb.link_power;
        f nb.dir;
        f nb.tag)
      t.neighbors.(u)
  done;
  Digest.to_hex (Digest.string (Buffer.contents b))

(* The central invariant: tracked state == from-scratch recompute over
   the tracked world.  The reference pass uses a *fresh* grid, so this
   also cross-checks the incremental index against a clean build.
   Float-exact comparison is intentional — both sides run the identical
   per-node float computation on identical inputs. *)
let check_full_equivalence ?pool t =
  let grid = Geom.Grid.create ~range:(Radio.Pathloss.max_range t.pathloss) t.positions in
  let alive_fn v = t.alive.(v) in
  let n = nb_nodes t in
  let bad = Array.make n None in
  let check u =
    if t.alive.(u) then begin
      let nbs, p, b =
        Cbtc.Geo.grow_one ~grid ~alive:alive_fn t.config t.pathloss t.positions u
      in
      let nb_eq (a : Cbtc.Neighbor.t) (x : Cbtc.Neighbor.t) =
        a.id = x.id && a.dir = x.dir && a.link_power = x.link_power
        && a.tag = x.tag
      in
      if p <> t.power.(u) then
        bad.(u) <- Some (Printf.sprintf "node %d: power %.17g, full recompute %.17g" u t.power.(u) p)
      else if b <> t.boundary.(u) then
        bad.(u) <- Some (Printf.sprintf "node %d: boundary %b, full recompute %b" u t.boundary.(u) b)
      else if
        List.length nbs <> List.length t.neighbors.(u)
        || not (List.for_all2 nb_eq t.neighbors.(u) nbs)
      then bad.(u) <- Some (Printf.sprintf "node %d: neighbor sets differ" u)
    end
    else if t.neighbors.(u) <> [] || t.power.(u) <> 0. || t.boundary.(u) then
      bad.(u) <- Some (Printf.sprintf "node %d: dead but has residual state" u)
  in
  (match pool with
  | None ->
      for u = 0 to n - 1 do
        check u
      done
  | Some pool ->
      Parallel.Pool.iter_chunks pool n (fun lo hi ->
          for u = lo to hi - 1 do
            check u
          done));
  match Array.find_map (fun x -> x) bad with
  | None -> Ok ()
  | Some m -> Error m
