(* Deterministic join/leave/move stream.

   All randomness flows from one seed: node motion from a split PRNG
   inside [Workload.Mobility], move sampling (which node reports, when)
   from the source's own stream, crashes/recoveries from the fault plan
   built by the caller.  Nodes advance lazily — [Mobility.step_one] up
   to each event's time — so a tick costs O(events), not O(n), and the
   stream depends only on the sequence of [tick ~until] boundaries.
   Replaying the same boundaries (checkpoint recovery) reproduces the
   stream bit-for-bit. *)

type t = {
  prng : Prng.t;  (* move sampling: (node, time) draws *)
  mob : Workload.Mobility.t;
  n : int;
  move_rate : float;  (* network-wide position reports per time unit *)
  storm : (float * float * float) option;  (* t0, t1, rate multiplier *)
  mutable churn : Faults.Plan.event list;  (* due crash/recover, sorted *)
  true_alive : bool array;
  last_advance : float array;
  mutable now : float;
  mutable credit : float;  (* fractional move budget carried across ticks *)
}

let create ~seed ~field ~params ~move_rate ?storm ~churn positions =
  if move_rate < 0. then invalid_arg "Daemon.Source.create: negative move_rate";
  (match storm with
  | Some (t0, t1, mult) ->
      if t0 < 0. || t1 < t0 || mult < 0. then
        invalid_arg "Daemon.Source.create: bad storm window"
  | None -> ());
  let prng = Prng.create ~seed in
  let mob_prng = Prng.split prng in
  let n = Array.length positions in
  {
    prng;
    mob = Workload.Mobility.create mob_prng ~field ~params positions;
    n;
    move_rate;
    storm;
    churn =
      (* links have no meaning for a topology-state daemon *)
      List.filter
        (fun (e : Faults.Plan.event) ->
          match e.kind with
          | Crash _ | Recover _ -> true
          | Link_loss _ -> false)
        (Faults.Plan.events churn);
    true_alive = Array.make n true;
    last_advance = Array.make n 0.;
    now = 0.;
    credit = 0.;
  }

let time t = t.now

let nb_nodes t = t.n

(* Bring node [u]'s motion up to stream time [until]. *)
let advance t u ~until =
  let dt = until -. t.last_advance.(u) in
  if dt > 0. then begin
    Workload.Mobility.step_one t.mob u ~dt;
    t.last_advance.(u) <- until
  end

let in_storm t at =
  match t.storm with
  | Some (t0, t1, _) -> at >= t0 && at < t1
  | None -> false

let tick t ~until =
  if until < t.now then invalid_arg "Daemon.Source.tick: time going backwards";
  let span = until -. t.now in
  (* Effective rate is sampled once per tick (at the epoch start): a
     storm that begins mid-epoch kicks in at the next boundary. *)
  let mult =
    match t.storm with
    | Some (_, _, m) when in_storm t t.now -> m
    | _ -> 1.
  in
  t.credit <- t.credit +. (t.move_rate *. mult *. span);
  let k = int_of_float (Float.floor t.credit) in
  t.credit <- t.credit -. float_of_int k;
  (* Draw all (node, time) move samples in generation order, then order
     by time with the draw index as tie-break — a stable, seed-only
     ordering. *)
  let moves =
    if k = 0 || span <= 0. then []
    else
      List.init k (fun i ->
          let u = Prng.int t.prng t.n in
          let at = Prng.uniform t.prng ~lo:t.now ~hi:until in
          (at, i, u))
  in
  let moves =
    List.sort
      (fun (a, i, _) (b, j, _) ->
        match Float.compare a b with 0 -> Int.compare i j | c -> c)
      moves
  in
  let due, later =
    List.partition
      (fun (e : Faults.Plan.event) -> e.time <= until)
      t.churn
  in
  t.churn <- later;
  (* Merge, churn first on time ties: a crash at time x silences the
     node before a simultaneous position report. *)
  let churn_event acc (e : Faults.Plan.event) =
    match e.kind with
    | Faults.Plan.Crash u when t.true_alive.(u) ->
        t.true_alive.(u) <- false;
        { Event.time = e.time; node = u; kind = Event.Leave } :: acc
    | Faults.Plan.Recover u when not t.true_alive.(u) ->
        advance t u ~until:e.time;
        t.true_alive.(u) <- true;
        let p = Workload.Mobility.position t.mob u in
        { Event.time = e.time; node = u; kind = Event.Join p } :: acc
    | _ -> acc  (* duplicate crash/recover, or filtered kinds *)
  in
  let move_event acc (at, _, u) =
    (* dead nodes keep reporting positions: the daemon must track them
       so a later recovery joins at the right place *)
    advance t u ~until:at;
    let p = Workload.Mobility.position t.mob u in
    { Event.time = at; node = u; kind = Event.Move p } :: acc
  in
  let rec emit acc (due : Faults.Plan.event list) moves =
    match (due, moves) with
    | [], [] -> List.rev acc
    | e :: due', [] -> emit (churn_event acc e) due' []
    | [], m :: moves' -> emit (move_event acc m) [] moves'
    | e :: due', ((at, _, _) :: _ as ms) when e.time <= at ->
        emit (churn_event acc e) due' ms
    | _, m :: moves' -> emit (move_event acc m) due moves'
  in
  let events = emit [] due moves in
  t.now <- until;
  events

let fast_forward t ~until = ignore (tick t ~until : Event.t list)

(* Ground truth for degradation reporting: where every node really is
   (lazily advanced to its last event) and who is really alive. *)
let true_positions t = Workload.Mobility.positions t.mob

let true_alive t = Array.copy t.true_alive
