let format_tag = "cbtc-daemon-checkpoint"

let version = 1

type t = {
  time : float;
  epoch : int;
  positions : Geom.Vec2.t array;
  alive : bool array;
  backlog : Event.t list;
  counters : (string * int) list;
}

let to_json c =
  let open Obs.Jsonl in
  let vec (p : Geom.Vec2.t) = List [ Float p.x; Float p.y ] in
  Obj
    [
      ("format", Str format_tag);
      ("version", Int version);
      ("time", Float c.time);
      ("epoch", Int c.epoch);
      ("positions", List (Array.to_list (Array.map vec c.positions)));
      ("alive", List (Array.to_list (Array.map (fun b -> Bool b) c.alive)));
      ("backlog", List (List.map Event.to_json c.backlog));
      ("counters", Obj (List.map (fun (k, v) -> (k, Int v)) c.counters));
    ]

let fail what = failwith ("Daemon.Checkpoint: malformed checkpoint: " ^ what)

let num what = function
  | Obs.Jsonl.Float f -> f
  | Obs.Jsonl.Int i -> Stdlib.float_of_int i
  | _ -> fail what

let of_json j =
  let open Obs.Jsonl in
  let get k = match member k j with Some v -> v | None -> fail ("missing " ^ k) in
  (match get "format" with
  | Str s when s = format_tag -> ()
  | _ -> fail "wrong format tag");
  (match get "version" with
  | Int v when v = version -> ()
  | _ -> fail "unsupported version");
  let time = num "time" (get "time") in
  let epoch = match get "epoch" with Int e -> e | _ -> fail "epoch" in
  let positions =
    match get "positions" with
    | List ps ->
        Array.of_list
          (List.map
             (function
               | List [ x; y ] -> Geom.Vec2.make (num "x" x) (num "y" y)
               | _ -> fail "positions entry")
             ps)
    | _ -> fail "positions"
  in
  let alive =
    match get "alive" with
    | List bs ->
        Array.of_list
          (List.map (function Bool b -> b | _ -> fail "alive entry") bs)
    | _ -> fail "alive"
  in
  if Array.length alive <> Array.length positions then
    fail "alive/positions length mismatch";
  let backlog =
    match get "backlog" with
    | List es -> List.map Event.of_json es
    | _ -> fail "backlog"
  in
  let counters =
    match get "counters" with
    | Obj kvs ->
        List.map (function k, Int v -> (k, v) | k, _ -> fail k) kvs
    | _ -> fail "counters"
  in
  { time; epoch; positions; alive; backlog; counters }

let save path c =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (Obs.Jsonl.to_string (to_json c));
      output_char oc '\n')

let load path =
  let ic =
    try open_in path
    with Sys_error m -> failwith ("Daemon.Checkpoint: cannot open: " ^ m)
  in
  let text =
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match Obs.Jsonl.of_string (String.trim text) with
  | j -> of_json j
  | exception Obs.Jsonl.Parse_error m ->
      failwith ("Daemon.Checkpoint: malformed checkpoint: " ^ m)
