(** The self-healing topology daemon loop.

    Epoch by epoch ([event_dt] of stream time each): pull the epoch's
    events from the deterministic {!Source}, push them through the
    bounded {!Equeue} (shedding moves under overload), apply at most
    [budget] of them to the incremental {!Engine}, and commit.  Around
    the core loop:

    - {b continuous verification} ([verify_every]): the CBTC guarantees
      on the tracked survivor state (a violation is an engine bug and is
      collected in [verify_failures]), plus degradation against the
      stream's ground truth — position drift, liveness lag, and
      connectivity preservation among the true survivors.  Degradation
      is {e reported}, never fatal: under overload it appears, and it
      heals once shedding stops (moves carry absolute positions).
    - {b the equivalence invariant} ([equivalence_every]): tracked state
      must equal a from-scratch recompute, float-exactly.
    - {b checkpoints} ([checkpoint_every] + [checkpoint_path]): periodic
      {!Checkpoint} snapshots; [run ~restore] resumes one and converges
      to the {e same topology digest} as the uninterrupted run.

    Reports are byte-identical for every pool size. *)

type params = {
  duration : float;
  event_dt : float;
  budget : int;  (** max events applied per epoch; [<= 0] = unlimited *)
  queue_cap : int;
  watchdog_frac : float;  (** see {!Engine.create} *)
  shards : int;
      (** spatial shards per pooled commit, see {!Engine.create};
          [0] = one per pool chunk *)
  verify_every : int;  (** 0 = final check only *)
  equivalence_every : int;  (** 0 = never *)
  checkpoint_every : int;  (** 0 = never *)
  checkpoint_path : string option;
}

val default_params : params

type stream = {
  seed : int;
  field : Workload.Placement.field;
  mobility : Workload.Mobility.params;
  move_rate : float;
  storm : (float * float * float) option;  (** (t0, t1, rate multiplier) *)
  churn : Faults.Plan.t;
  positions : Geom.Vec2.t array;
}

type degradation = {
  drift : int;  (** nodes whose tracked position <> true position *)
  liveness_lag : int;  (** nodes whose tracked liveness <> truth *)
  connectivity_preserved : bool;
      (** tracked topology preserves the survivor partition of [G_R] *)
}

val degraded : degradation -> bool

type latency = {
  p50 : float;
  p95 : float;
  p99 : float;
  max : float;
  samples : int;
}
(** Convergence latency (stream time from event emission to the end of
    the epoch that applied it), nearest-rank percentiles. *)

type report = {
  epochs : int;
  duration : float;
  live : int;
  queue : Equeue.stats;
  engine : Engine.stats;
  latency : latency option;
  verify_checks : int;
  degraded_checks : int;
  final_degradation : degradation;
  verify_failures : string list;
  equivalence_checks : int;
  equivalence_failures : string list;
  checkpoints_written : int;
  grid : Geom.Grid.health;
  topology_digest : string;
  wall_s : float option;
}

(** [run ?pool ?obs ?clock ?restore ~params ~config ~pathloss stream].
    [obs] records per-phase spans for every epoch — [daemon.drain]
    (source tick + queue push), [daemon.dirty_propagate] (event
    apply), [daemon.regrow] (commit), [daemon.verify] (equivalence and
    invariant checks) — plus the per-epoch counters; with a clockless
    recorder the trace is deterministic and [-j]-independent.
    [clock] (e.g. [Unix.gettimeofday]) enables [wall_s] and the derived
    events/sec — and makes the report non-reproducible, so benchmarks
    only.  [restore] resumes a checkpoint: the source is resynchronized
    by replaying the processed epoch boundaries, the engine re-derives
    all cones from the snapshot, and counters carry over.
    @raise Invalid_argument on non-positive duration/event_dt, a
    [queue_cap < 1], fewer than two nodes, or a checkpoint that does not
    match the stream. *)
val run :
  ?pool:Parallel.Pool.t ->
  ?obs:Obs.Recorder.t ->
  ?clock:(unit -> float) ->
  ?restore:Checkpoint.t ->
  ?env:Radio.Env.t ->
  params:params ->
  config:Cbtc.Config.t ->
  pathloss:Radio.Pathloss.t ->
  stream ->
  report

(** Byte-stable JSON rendering ([jobs] is included so smoke tests can
    normalize it away before comparing runs at different [-j]). *)
val report_json : report -> jobs:int -> Obs.Jsonl.t
