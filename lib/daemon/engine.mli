(** Incrementally maintained CBTC topology state.

    Tracks positions, liveness, and every node's converged cone
    (neighbors, power, boundary flag) under a stream of join/leave/move
    events.  Because per-node discovery ({!Cbtc.Geo.grow_one}) is a pure
    function of the live positions within radio range, an event can only
    affect nodes within range R of the positions it touches: {!apply}
    marks exactly those dirty, {!commit} regrows them, and the result is
    provably equal to recomputing everything from scratch — the
    invariant {!check_full_equivalence} verifies and
    [Check.Explore.sweep_daemon] sweeps across seeded schedules. *)

type stats = {
  mutable events : int;
  mutable moves : int;
  mutable leaves : int;
  mutable joins : int;
  mutable commits : int;  (** commits that had work to do *)
  mutable regrown : int;  (** node regrowths, incremental + full *)
  mutable full_recomputes : int;  (** watchdog trips *)
}

type t

(** Default {!commit} watchdog fraction: [1.0].  Regrowing a dirty node
    runs the same per-node kernel over the same index as the full pass
    (per-node wall cost measured within a few percent on the n=10k
    benchmark stream), so a full recompute is never cheaper than
    [k < live] regrowths; at [k = live] the two are the same target
    set and the full pass additionally squashes any drift.  The
    watchdog therefore trips exactly when the whole live population is
    dirty — a free drift-squash, not a routine fallback. *)
val default_watchdog_frac : float

(** [create ?pool ?alive ?shards ~watchdog_frac config pathloss
    positions] grows every (initially) live node's cone from scratch.
    [alive] defaults to all-true; [watchdog_frac] is the dirty-set
    fraction of the live population at which {!commit} abandons
    incremental regrowth for a full recompute ([0.] = always full,
    [> 1.] = never).  [shards] is the number of spatial shards a
    pooled commit partitions its targets into (0, the default, derives
    one shard per pool chunk); results are bit-identical for every
    value.  [env] ({!Radio.Env}) switches per-node discovery and the
    dirty-propagation cut to the per-link propagation environment;
    trivial environments ([Radio.Env.is_trivial]) are collapsed away,
    so sigma = 0 runs the pure pathloss code bit for bit.
    @raise Invalid_argument on a negative [watchdog_frac] or [shards],
    or an [alive] mask of the wrong length. *)
val create :
  ?pool:Parallel.Pool.t ->
  ?alive:bool array ->
  ?env:Radio.Env.t ->
  ?shards:int ->
  watchdog_frac:float ->
  Cbtc.Config.t -> Radio.Pathloss.t -> Geom.Vec2.t array -> t

val nb_nodes : t -> int

val live : t -> int

val alive : t -> int -> bool

val position : t -> int -> Geom.Vec2.t

(** [power t u] is [u]'s converged transmit power (0 when dead). *)
val power : t -> int -> float

(** Live view of the counters — not a copy. *)
val stats : t -> stats

(** Drift/overflow/rebuild health of the engine's spatial index
    (surfaced per epoch by the daemon driver). *)
val grid_health : t -> Geom.Grid.health

(** [apply t e] updates tracked positions/liveness and marks the
    affected nodes dirty.  Cones are not touched until {!commit}.
    Events for dead nodes update their tracked position silently.
    @raise Invalid_argument on a node id out of range. *)
val apply : t -> Event.t -> unit

(** [commit ?pool t] regrows the dirty live nodes — incrementally, or
    fully when the dirty set reaches [watchdog_frac] of the live
    population — and empties the dirty set.  With a pool, the targets
    are sorted into compact spatial shards first (same results, warmer
    caches).  The payload is the number of nodes regrown. *)
val commit :
  ?pool:Parallel.Pool.t -> t -> [ `Clean | `Incremental of int | `Full of int ]

(** {1 Snapshots and invariants} *)

(** Copy of the tracked state as a {!Cbtc.Discovery.t} (dead nodes carry
    empty neighbor sets and power 0 — {!Cbtc.Verify.check_surviving} skips
    them). *)
val discovery : t -> Cbtc.Discovery.t

(** [G_alpha] restricted to the tracked state: symmetric closure of the
    discovered-neighbor relation. *)
val topology : t -> Graphkit.Ugraph.t

(** MD5 hex over the full tracked state (positions, liveness, powers,
    boundary flags, neighbor records): two runs converged to the same
    topology iff their digests match — the checkpoint-recovery smoke
    test's oracle. *)
val digest : t -> string

(** [check_full_equivalence ?pool t] recomputes every live node from
    scratch — against a {e fresh} spatial index — and float-exactly
    compares with the tracked state; dead nodes must hold no residual
    state.  [Error] names the first mismatching node. *)
val check_full_equivalence : ?pool:Parallel.Pool.t -> t -> (unit, string) result
