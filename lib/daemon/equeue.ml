(* Bounded FIFO with drop-oldest-move shedding.

   The main queue holds (seq, event) in arrival order.  Move events also
   record their seq in [moves]; shedding marks the *oldest* queued move
   dead (an O(1) pop of [moves] plus a hashtable entry) and pop skips
   dead seqs lazily.  The two structures stay consistent because both
   removal paths — popping a move in FIFO order and shedding the oldest
   move — remove exactly the front of [moves]. *)

type stats = {
  mutable pushed : int;
  mutable popped : int;
  mutable shed : int;
  mutable overflow : int;
  mutable peak : int;
}

type t = {
  capacity : int;
  main : (int * Event.t) Queue.t;
  moves : int Queue.t;  (* seqs of queued (not shed, not popped) moves *)
  dead : (int, unit) Hashtbl.t;  (* shed seqs still physically in [main] *)
  mutable next_seq : int;
  mutable len : int;  (* logical backlog: len main - len dead *)
  stats : stats;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Daemon.Equeue.create: capacity < 1";
  {
    capacity;
    main = Queue.create ();
    moves = Queue.create ();
    dead = Hashtbl.create 64;
    next_seq = 0;
    len = 0;
    stats = { pushed = 0; popped = 0; shed = 0; overflow = 0; peak = 0 };
  }

let capacity t = t.capacity

let length t = t.len

let stats t = t.stats

let admit t e =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Queue.push (seq, e) t.main;
  if Event.is_move e then Queue.push seq t.moves;
  t.len <- t.len + 1;
  if t.len > t.stats.peak then t.stats.peak <- t.len

(* Mark the oldest queued move dead.  Returns false when no move is
   queued (the backlog is all joins/leaves). *)
let shed_oldest_move t =
  match Queue.take_opt t.moves with
  | None -> false
  | Some seq ->
      Hashtbl.replace t.dead seq ();
      t.len <- t.len - 1;
      t.stats.shed <- t.stats.shed + 1;
      true

let push t e =
  t.stats.pushed <- t.stats.pushed + 1;
  if t.len < t.capacity then admit t e
  else if Event.is_move e then begin
    (* Overload: drop the *oldest* move — the incoming report is fresher
       for its node — or, when the incoming move is the only one, drop
       it instead.  Joins and leaves are never shed. *)
    if shed_oldest_move t then admit t e
    else t.stats.shed <- t.stats.shed + 1
  end
  else if shed_oldest_move t then admit t e
  else begin
    (* a backlog made entirely of critical events: grow past capacity
       rather than lose a membership change *)
    t.stats.overflow <- t.stats.overflow + 1;
    admit t e
  end

let rec pop t =
  match Queue.take_opt t.main with
  | None -> None
  | Some (seq, e) ->
      if Hashtbl.mem t.dead seq then begin
        Hashtbl.remove t.dead seq;
        pop t
      end
      else begin
        if Event.is_move e then begin
          (* FIFO pop order equals seq order, so a popped move is
             necessarily the front of [moves] *)
          match Queue.take_opt t.moves with
          | Some s when s = seq -> ()
          | _ -> assert false
        end;
        t.len <- t.len - 1;
        t.stats.popped <- t.stats.popped + 1;
        Some e
      end

let to_list t =
  Queue.fold
    (fun acc (seq, e) -> if Hashtbl.mem t.dead seq then acc else e :: acc)
    [] t.main
  |> List.rev

(* Checkpoint restore: the backlog was already admitted (and shed) by
   the original run, so it bypasses the shedding policy entirely — a
   critical-overflow backlog longer than [capacity] must reload as is. *)
let restore ~capacity backlog =
  let t = create ~capacity in
  List.iter (fun e -> admit t e) backlog;
  t.stats.peak <- 0;
  t
