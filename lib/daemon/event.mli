(** The daemon's input alphabet: timestamped join/leave/move events.

    [Move] and [Join] carry the node's absolute position at the event
    time (a GPS report, not a delta) — processing a node's latest move
    makes its tracked position exact regardless of how many earlier
    moves were shed under overload, which is what lets the daemon heal
    automatically once a storm passes (see docs/DAEMON.md). *)

type kind =
  | Move of Geom.Vec2.t  (** position report for a (live or dead) node *)
  | Leave  (** node crashed / departed *)
  | Join of Geom.Vec2.t  (** node (re)appeared at the given position *)

type t = { time : float; node : int; kind : kind }

val is_move : t -> bool

(** [is_critical e] — joins and leaves: the events the bounded queue is
    never allowed to drop. *)
val is_critical : t -> bool

val kind_label : kind -> string

(** JSON round-trip, used by the checkpoint's queue-backlog snapshot.
    [of_json] raises [Failure] on malformed input. *)
val to_json : t -> Obs.Jsonl.t

val of_json : Obs.Jsonl.t -> t

val pp : t Fmt.t
