(** Bounded event queue with overload shedding.

    Arrival order is preserved.  When the logical backlog reaches
    [capacity], an incoming event makes room by shedding the {e oldest
    queued move} (its node's position will be corrected by any later
    report, since moves carry absolute positions); when no move is
    queued, an incoming move is itself dropped, while joins and leaves
    are {e always} admitted — the queue grows past capacity rather than
    lose a membership change, and [stats.overflow] counts how often. *)

type stats = {
  mutable pushed : int;  (** events offered via {!push} *)
  mutable popped : int;  (** events handed out via {!pop} *)
  mutable shed : int;  (** moves dropped under overload *)
  mutable overflow : int;  (** criticals admitted past capacity *)
  mutable peak : int;  (** high-water mark of the logical backlog *)
}

type t

(** @raise Invalid_argument when [capacity < 1]. *)
val create : capacity:int -> t

val capacity : t -> int

(** Logical backlog length (shed events excluded). *)
val length : t -> int

(** Live view of the counters — not a copy. *)
val stats : t -> stats

val push : t -> Event.t -> unit

(** Oldest surviving event, FIFO. *)
val pop : t -> Event.t option

(** Surviving backlog, oldest first.  Non-destructive; used by the
    checkpoint writer. *)
val to_list : t -> Event.t list

(** [restore ~capacity backlog] rebuilds a queue holding exactly
    [backlog] (oldest first), {e bypassing} the shedding policy: the
    original run already admitted these events, so a restored run must
    not drop any of them even when [backlog] exceeds [capacity].
    Counters restart at zero. *)
val restore : capacity:int -> Event.t list -> t
