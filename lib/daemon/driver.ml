(* The daemon loop: epoch by epoch, pull events from the deterministic
   source, push them through the bounded queue (shedding under
   overload), apply the survivors to the incremental engine, and commit.
   Around that core: continuous verification against the CBTC guarantees
   and the ground truth, the incremental-vs-full equivalence invariant,
   and periodic checkpoints for crash recovery.

   Determinism: everything observable — events, shedding decisions,
   regrown cones, digests — is a pure function of (stream, params,
   epoch boundaries).  The pool only changes where regrowth runs, never
   what it computes, so reports are byte-identical at every -j. *)

type params = {
  duration : float;
  event_dt : float;  (* epoch length: events are batched per epoch *)
  budget : int;  (* max events applied per epoch; <= 0 = unlimited *)
  queue_cap : int;
  watchdog_frac : float;
  shards : int;  (* spatial commit shards; 0 = one per pool chunk *)
  verify_every : int;  (* epochs between truth checks; 0 = final only *)
  equivalence_every : int;  (* epochs between invariant checks; 0 = never *)
  checkpoint_every : int;  (* epochs between snapshots; 0 = never *)
  checkpoint_path : string option;
}

let default_params =
  {
    duration = 10.;
    event_dt = 1.;
    budget = 0;
    queue_cap = 4096;
    watchdog_frac = Engine.default_watchdog_frac;
    shards = 0;
    verify_every = 0;
    equivalence_every = 0;
    checkpoint_every = 0;
    checkpoint_path = None;
  }

type stream = {
  seed : int;
  field : Workload.Placement.field;
  mobility : Workload.Mobility.params;
  move_rate : float;
  storm : (float * float * float) option;
  churn : Faults.Plan.t;
  positions : Geom.Vec2.t array;
}

type degradation = { drift : int; liveness_lag : int; connectivity_preserved : bool }

let degraded d = d.drift > 0 || d.liveness_lag > 0 || not d.connectivity_preserved

type latency = { p50 : float; p95 : float; p99 : float; max : float; samples : int }

type report = {
  epochs : int;
  duration : float;
  live : int;
  queue : Equeue.stats;
  engine : Engine.stats;
  latency : latency option;  (* None when no event was applied *)
  verify_checks : int;
  degraded_checks : int;
  final_degradation : degradation;
  verify_failures : string list;  (* violated guarantees = engine bugs *)
  equivalence_checks : int;
  equivalence_failures : string list;
  checkpoints_written : int;
  grid : Geom.Grid.health;
  topology_digest : string;
  wall_s : float option;
}

(* Growable float buffer for latency samples (tens of thousands of
   events at n = 10k: keep them unboxed). *)
module Samples = struct
  type t = { mutable a : float array; mutable len : int }

  let create () = { a = Array.make 1024 0.; len = 0 }

  let add t x =
    if t.len = Array.length t.a then begin
      let b = Array.make (2 * t.len) 0. in
      Array.blit t.a 0 b 0 t.len;
      t.a <- b
    end;
    t.a.(t.len) <- x;
    t.len <- t.len + 1

  (* nearest-rank percentiles on a sorted copy *)
  let latency t =
    if t.len = 0 then None
    else begin
      let s = Array.sub t.a 0 t.len in
      Array.sort Float.compare s;
      let pct q =
        let r = int_of_float (Float.ceil (q /. 100. *. float_of_int t.len)) in
        s.(Stdlib.max 0 (Stdlib.min (t.len - 1) (r - 1)))
      in
      Some
        {
          p50 = pct 50.;
          p95 = pct 95.;
          p99 = pct 99.;
          max = s.(t.len - 1);
          samples = t.len;
        }
    end
end

let counters_of (es : Engine.stats) (qs : Equeue.stats) =
  [
    ("events", es.events);
    ("moves", es.moves);
    ("leaves", es.leaves);
    ("joins", es.joins);
    ("commits", es.commits);
    ("regrown", es.regrown);
    ("full_recomputes", es.full_recomputes);
    ("pushed", qs.pushed);
    ("popped", qs.popped);
    ("shed", qs.shed);
    ("overflow", qs.overflow);
    ("peak", qs.peak);
  ]

let restore_counters (es : Engine.stats) (qs : Equeue.stats) kvs =
  let get k = match List.assoc_opt k kvs with Some v -> v | None -> 0 in
  es.events <- get "events";
  es.moves <- get "moves";
  es.leaves <- get "leaves";
  es.joins <- get "joins";
  es.commits <- get "commits";
  es.regrown <- get "regrown";
  es.full_recomputes <- get "full_recomputes";
  qs.pushed <- get "pushed";
  qs.popped <- get "popped";
  qs.shed <- get "shed";
  qs.overflow <- get "overflow";
  qs.peak <- get "peak"

(* Edges of [g] with both endpoints alive — connectivity comparisons
   are made among the true survivors only. *)
let restrict g alive =
  let h = Graphkit.Ugraph.create (Graphkit.Ugraph.nb_nodes g) in
  Graphkit.Ugraph.iter_edges
    (fun u v -> if alive.(u) && alive.(v) then Graphkit.Ugraph.add_edge h u v)
    g;
  h

let validate (params : params) (stream : stream) =
  if not (params.duration > 0.) then
    invalid_arg "Daemon.Driver.run: duration must be positive";
  if not (params.event_dt > 0.) then
    invalid_arg "Daemon.Driver.run: event_dt must be positive";
  if params.queue_cap < 1 then
    invalid_arg "Daemon.Driver.run: queue_cap must be >= 1";
  if not (params.watchdog_frac >= 0.) then
    invalid_arg "Daemon.Driver.run: watchdog_frac must be >= 0";
  if params.shards < 0 then
    invalid_arg "Daemon.Driver.run: shards must be >= 0";
  if Array.length stream.positions < 2 then
    invalid_arg "Daemon.Driver.run: need at least two nodes"

let run ?pool ?obs ?clock ?restore ?env ~params ~config ~pathloss stream =
  validate params stream;
  let t_start = match clock with Some c -> Some (c ()) | None -> None in
  let total =
    Stdlib.max 1 (int_of_float (Float.ceil (params.duration /. params.event_dt)))
  in
  let boundary ep =
    Stdlib.min params.duration (float_of_int (ep + 1) *. params.event_dt)
  in
  let n = Array.length stream.positions in
  let src =
    Source.create ~seed:stream.seed ~field:stream.field ~params:stream.mobility
      ~move_rate:stream.move_rate ?storm:stream.storm ~churn:stream.churn
      stream.positions
  in
  let engine, queue, start_epoch =
    match restore with
    | None ->
        ( Engine.create ?pool ?env ~shards:params.shards
            ~watchdog_frac:params.watchdog_frac config pathloss
            stream.positions,
          Equeue.create ~capacity:params.queue_cap,
          0 )
    | Some (c : Checkpoint.t) ->
        if Array.length c.positions <> n then
          invalid_arg "Daemon.Driver.run: checkpoint node count mismatch";
        if c.epoch < 0 || c.epoch > total then
          invalid_arg "Daemon.Driver.run: checkpoint epoch out of range";
        (* the stream is a pure function of the boundary sequence:
           replaying the processed epochs resynchronizes the source *)
        for ep = 0 to c.epoch - 1 do
          Source.fast_forward src ~until:(boundary ep)
        done;
        let engine =
          Engine.create ?pool ~alive:c.alive ?env ~shards:params.shards
            ~watchdog_frac:params.watchdog_frac config pathloss c.positions
        in
        let queue = Equeue.restore ~capacity:params.queue_cap c.backlog in
        restore_counters (Engine.stats engine) (Equeue.stats queue) c.counters;
        (engine, queue, c.epoch)
  in
  let lat = Samples.create () in
  let verify_checks = ref 0 in
  let degraded_checks = ref 0 in
  let verify_failures = ref [] in
  let equivalence_checks = ref 0 in
  let equivalence_failures = ref [] in
  let checkpoints_written = ref 0 in
  let observe name v =
    match obs with Some o -> Obs.Recorder.observe o name v | None -> ()
  in
  (* per-phase spans: with the CLI's clockless recorder these carry no
     wall time, only deterministic structure, so traces stay
     -j-identical and byte-stable *)
  let span name f =
    match obs with Some o -> Obs.Recorder.span o name f | None -> f ()
  in
  let verify () =
    incr verify_checks;
    (match
       Cbtc.Verify.check_surviving ?env
         ~alive:(Array.init n (Engine.alive engine))
         (Engine.discovery engine)
     with
    | Ok () -> ()
    | Error m -> verify_failures := m :: !verify_failures);
    let truth_pos = Source.true_positions src in
    let truth_alive = Source.true_alive src in
    let drift = ref 0 in
    let lag = ref 0 in
    for u = 0 to n - 1 do
      if Engine.position engine u <> truth_pos.(u) then Stdlib.incr drift;
      if Engine.alive engine u <> truth_alive.(u) then Stdlib.incr lag
    done;
    let reference =
      restrict
        (Cbtc.Geo.max_power_graph ?pool ?env pathloss truth_pos)
        truth_alive
    in
    let tracked = restrict (Engine.topology engine) truth_alive in
    let d =
      {
        drift = !drift;
        liveness_lag = !lag;
        connectivity_preserved =
          Metrics.Connectivity.preserves ~reference tracked;
      }
    in
    if degraded d then Stdlib.incr degraded_checks;
    d
  in
  let checkpoint ~time ~epoch path =
    Checkpoint.save path
      {
        Checkpoint.time;
        epoch;
        positions = Array.init n (Engine.position engine);
        alive = Array.init n (Engine.alive engine);
        backlog = Equeue.to_list queue;
        counters = counters_of (Engine.stats engine) (Equeue.stats queue);
      };
    Stdlib.incr checkpoints_written
  in
  for ep = start_epoch to total - 1 do
    let t1 = boundary ep in
    span "daemon.drain" (fun () ->
        let events = Source.tick src ~until:t1 in
        List.iter (Equeue.push queue) events);
    let budget = if params.budget <= 0 then max_int else params.budget in
    let applied = ref 0 in
    span "daemon.dirty_propagate" (fun () ->
        let continue = ref true in
        while !continue && !applied < budget do
          match Equeue.pop queue with
          | None -> continue := false
          | Some ev ->
              (* convergence latency: stream time from the event to the
                 end of the epoch that applied it *)
              Samples.add lat (t1 -. ev.Event.time);
              Engine.apply engine ev;
              Stdlib.incr applied
        done);
    span "daemon.regrow" (fun () ->
        match Engine.commit ?pool engine with
        | `Clean -> ()
        | `Incremental k -> observe "daemon.regrow_incremental" (float_of_int k)
        | `Full k -> observe "daemon.regrow_full" (float_of_int k));
    observe "daemon.epoch_events" (float_of_int !applied);
    observe "daemon.epoch_backlog" (float_of_int (Equeue.length queue));
    if
      params.equivalence_every > 0
      && (ep + 1 - start_epoch) mod params.equivalence_every = 0
    then
      span "daemon.verify" (fun () ->
          Stdlib.incr equivalence_checks;
          match Engine.check_full_equivalence ?pool engine with
          | Ok () -> ()
          | Error m ->
              equivalence_failures :=
                Printf.sprintf "epoch %d: %s" (ep + 1) m
                :: !equivalence_failures);
    if params.verify_every > 0 && (ep + 1) mod params.verify_every = 0 then
      span "daemon.verify" (fun () -> ignore (verify () : degradation));
    match params.checkpoint_path with
    | Some path
      when params.checkpoint_every > 0
           && (ep + 1) mod params.checkpoint_every = 0 && ep + 1 < total ->
        checkpoint ~time:t1 ~epoch:(ep + 1) path
    | _ -> ()
  done;
  let final_degradation = span "daemon.verify" verify in
  let wall_s =
    match (clock, t_start) with
    | Some c, Some t0 -> Some (c () -. t0)
    | _ -> None
  in
  {
    epochs = total;
    duration = params.duration;
    live = Engine.live engine;
    queue = Equeue.stats queue;
    engine = Engine.stats engine;
    latency = Samples.latency lat;
    verify_checks = !verify_checks;
    degraded_checks = !degraded_checks;
    final_degradation;
    verify_failures = List.rev !verify_failures;
    equivalence_checks = !equivalence_checks;
    equivalence_failures = List.rev !equivalence_failures;
    checkpoints_written = !checkpoints_written;
    grid = Engine.grid_health engine;
    topology_digest = Engine.digest engine;
    wall_s;
  }

let report_json (r : report) ~jobs =
  let open Obs.Jsonl in
  let lat =
    match r.latency with
    | None -> Null
    | Some l ->
        Obj
          [
            ("p50", Float l.p50);
            ("p95", Float l.p95);
            ("p99", Float l.p99);
            ("max", Float l.max);
            ("samples", Int l.samples);
          ]
  in
  let counters =
    List.map (fun (k, v) -> (k, Int v)) (counters_of r.engine r.queue)
  in
  Obj
    ([
       ("epochs", Int r.epochs);
       ("duration", Float r.duration);
       ("jobs", Int jobs);
       ("live", Int r.live);
     ]
    @ counters
    @ [
        ("latency", lat);
        ("verify_checks", Int r.verify_checks);
        ("degraded_checks", Int r.degraded_checks);
        ( "final_degradation",
          Obj
            [
              ("drift", Int r.final_degradation.drift);
              ("liveness_lag", Int r.final_degradation.liveness_lag);
              ( "connectivity_preserved",
                Bool r.final_degradation.connectivity_preserved );
            ] );
        ("verify_failures", List (List.map (fun m -> Str m) r.verify_failures));
        ("equivalence_checks", Int r.equivalence_checks);
        ( "equivalence_failures",
          List (List.map (fun m -> Str m) r.equivalence_failures) );
        ("checkpoints_written", Int r.checkpoints_written);
        ( "grid",
          Obj
            [
              ("drifted", Int r.grid.Geom.Grid.drifted);
              ("overflow", Int r.grid.Geom.Grid.overflow);
              ("compactions", Int r.grid.Geom.Grid.compactions);
            ] );
        ("topology_digest", Str r.topology_digest);
        ( "events_per_s",
          match r.wall_s with
          | Some w when w > 0. ->
              Float (float_of_int r.engine.Engine.events /. w)
          | _ -> Null );
        ("wall_s", match r.wall_s with Some w -> Float w | None -> Null);
      ])
