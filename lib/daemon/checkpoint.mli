(** Periodic daemon snapshots: enough state to resume a run and replay
    it to the same topology as an uninterrupted one.

    A checkpoint stores the {e tracked} world (positions and liveness as
    last applied by the engine), the surviving queue backlog, and the
    counters — not the grown cones: on restore the engine re-derives all
    cones with one full recompute, which is both simpler and
    self-checking (any divergence from the uninterrupted run shows up in
    the topology digest).  See docs/DAEMON.md for the on-disk format. *)

type t = {
  time : float;  (** stream time the checkpoint was cut at *)
  epoch : int;  (** epochs fully processed before the cut *)
  positions : Geom.Vec2.t array;
  alive : bool array;
  backlog : Event.t list;  (** surviving queued events, oldest first *)
  counters : (string * int) list;
}

val to_json : t -> Obs.Jsonl.t

(** @raise Failure on a structurally invalid document. *)
val of_json : Obs.Jsonl.t -> t

(** Single-line JSON document at [path] (truncates). *)
val save : string -> t -> unit

(** @raise Failure when the file is unreadable or malformed — the CLI
    maps this to exit code 2, like any unloadable artifact. *)
val load : string -> t
