type kind = Move of Geom.Vec2.t | Leave | Join of Geom.Vec2.t

type t = { time : float; node : int; kind : kind }

let is_move e = match e.kind with Move _ -> true | Leave | Join _ -> false

let is_critical e = not (is_move e)

let kind_label = function Move _ -> "move" | Leave -> "leave" | Join _ -> "join"

let to_json e =
  let pos =
    match e.kind with
    | Leave -> []
    | Move p | Join p ->
        [ ("x", Obs.Jsonl.Float p.Geom.Vec2.x);
          ("y", Obs.Jsonl.Float p.Geom.Vec2.y) ]
  in
  Obs.Jsonl.Obj
    ([ ("t", Obs.Jsonl.Float e.time);
       ("node", Obs.Jsonl.Int e.node);
       ("kind", Obs.Jsonl.Str (kind_label e.kind)) ]
    @ pos)

(* Jsonl prints floats with the shortest round-tripping decimal, so an
   integral float comes back as [Int]: accept both. *)
let num field = function
  | Some (Obs.Jsonl.Float f) -> f
  | Some (Obs.Jsonl.Int i) -> Stdlib.float_of_int i
  | _ -> failwith ("Daemon.Event.of_json: bad or missing field " ^ field)

let of_json j =
  let get k = Obs.Jsonl.member k j in
  let time = num "t" (get "t") in
  let node =
    match get "node" with
    | Some (Obs.Jsonl.Int i) -> i
    | _ -> failwith "Daemon.Event.of_json: bad or missing field node"
  in
  let kind =
    match get "kind" with
    | Some (Obs.Jsonl.Str "leave") -> Leave
    | Some (Obs.Jsonl.Str (("move" | "join") as k)) ->
        let p = Geom.Vec2.make (num "x" (get "x")) (num "y" (get "y")) in
        if k = "move" then Move p else Join p
    | _ -> failwith "Daemon.Event.of_json: bad or missing field kind"
  in
  { time; node; kind }

let pp ppf e =
  match e.kind with
  | Leave -> Fmt.pf ppf "@[%g leave %d@]" e.time e.node
  | Move p -> Fmt.pf ppf "@[%g move %d -> %a@]" e.time e.node Geom.Vec2.pp p
  | Join p -> Fmt.pf ppf "@[%g join %d @@ %a@]" e.time e.node Geom.Vec2.pp p
