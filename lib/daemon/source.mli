(** Deterministic join/leave/move event stream.

    Combines random-waypoint motion ([Workload.Mobility], advanced
    lazily per node) with a crash/recovery plan ([Faults.Plan];
    [Link_loss] entries are ignored — the daemon tracks topology state,
    not links).  All randomness derives from [seed], and the stream is a
    pure function of [(seed, tick boundaries)]: replaying the same
    sequence of [tick ~until] calls — as checkpoint recovery does —
    reproduces the identical event list, bit for bit. *)

type t

(** [create ~seed ~field ~params ~move_rate ?storm ~churn positions] —
    [move_rate] is network-wide position reports per time unit; [storm]
    is [(t0, t1, mult)]: while the tick start lies in [[t0, t1)] the
    move rate is multiplied by [mult] (a load spike for shedding tests).
    @raise Invalid_argument on a negative rate or an unordered storm. *)
val create :
  seed:int ->
  field:Workload.Placement.field ->
  params:Workload.Mobility.params ->
  move_rate:float ->
  ?storm:float * float * float ->
  churn:Faults.Plan.t ->
  Geom.Vec2.t array ->
  t

val time : t -> float

val nb_nodes : t -> int

(** [tick t ~until] advances stream time and returns the events in
    [(time t, until]], time-ordered; on equal times, crashes and
    recoveries precede position reports.  Dead nodes keep emitting moves
    (their motion continues), and a recovery's [Join] carries the
    node's true position at recovery time.
    @raise Invalid_argument when [until < time t]. *)
val tick : t -> until:float -> Event.t list

(** [tick], discarding the events — replaying history up to a
    checkpoint. *)
val fast_forward : t -> until:float -> unit

(** {1 Ground truth}

    What the world actually looks like, for degradation reporting:
    tracked state that processed every event matches these exactly. *)

val true_positions : t -> Geom.Vec2.t array

val true_alive : t -> bool array
