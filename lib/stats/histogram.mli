(** Fixed-width histograms with an ASCII rendering, used by the CLI and
    examples to show degree/radius distributions. *)

type t

(** [create ~lo ~hi ~bins] covers [\[lo, hi)] with [bins] equal-width
    buckets plus implicit underflow/overflow buckets.
    @raise Invalid_argument when [hi <= lo] or [bins <= 0]. *)
val create : lo:float -> hi:float -> bins:int -> t

val add : t -> float -> unit

val count : t -> int

(** [counts t] is the per-bucket counts, excluding under/overflow. *)
val counts : t -> int array

val underflow : t -> int

val overflow : t -> int

(** [bucket_bounds t i] is the half-open interval covered by bucket [i]. *)
val bucket_bounds : t -> int -> float * float

(** [pp ?width] renders horizontal bars scaled to [width] (default 40). *)
val pp : ?width:int -> unit -> t Fmt.t
