(** Batch summaries of float samples: mean, spread, and percentiles. *)

type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p05 : float;
  p25 : float;
  p75 : float;
  p95 : float;
}

(** [of_list xs] / [of_array xs] summarize a sample.  All fields are [nan]
    when the sample is empty ([n = 0]). *)
val of_list : float list -> t

val of_array : float array -> t

(** [percentile sorted p] is the [p]-th percentile ([0 <= p <= 100]) of a
    sample that is already sorted ascending, with linear interpolation
    between order statistics.
    @raise Invalid_argument when the sample is empty or [p] out of range. *)
val percentile : float array -> float -> float

val pp : t Fmt.t
