type t = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
  p05 : float;
  p25 : float;
  p75 : float;
  p95 : float;
}

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Summary.percentile: empty sample";
  if p < 0. || p > 100. then invalid_arg "Summary.percentile: out of range";
  if n = 1 then sorted.(0)
  else
    let rank = p /. 100. *. Stdlib.float_of_int (n - 1) in
    let lo = Stdlib.int_of_float (Float.floor rank) in
    let hi = Stdlib.int_of_float (Float.ceil rank) in
    if lo = hi then sorted.(lo)
    else
      let frac = rank -. Stdlib.float_of_int lo in
      ((1. -. frac) *. sorted.(lo)) +. (frac *. sorted.(hi))

let of_array xs =
  let n = Array.length xs in
  if n = 0 then
    {
      n = 0;
      mean = Float.nan;
      stddev = Float.nan;
      min = Float.nan;
      max = Float.nan;
      median = Float.nan;
      p05 = Float.nan;
      p25 = Float.nan;
      p75 = Float.nan;
      p95 = Float.nan;
    }
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let acc = Welford.create () in
    Array.iter (Welford.add acc) xs;
    {
      n;
      mean = Welford.mean acc;
      stddev = (if n < 2 then 0. else Welford.stddev acc);
      min = sorted.(0);
      max = sorted.(n - 1);
      median = percentile sorted 50.;
      p05 = percentile sorted 5.;
      p25 = percentile sorted 25.;
      p75 = percentile sorted 75.;
      p95 = percentile sorted 95.;
    }
  end

let of_list xs = of_array (Array.of_list xs)

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f p25=%.3f med=%.3f p75=%.3f max=%.3f"
    t.n t.mean t.stddev t.min t.p25 t.median t.p75 t.max
