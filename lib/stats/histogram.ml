type t = {
  lo : float;
  hi : float;
  bins : int;
  counts : int array;
  mutable underflow : int;
  mutable overflow : int;
  mutable total : int;
}

let create ~lo ~hi ~bins =
  if hi <= lo then invalid_arg "Histogram.create: empty range";
  if bins <= 0 then invalid_arg "Histogram.create: non-positive bins";
  { lo; hi; bins; counts = Array.make bins 0; underflow = 0; overflow = 0; total = 0 }

let add t x =
  t.total <- t.total + 1;
  if x < t.lo then t.underflow <- t.underflow + 1
  else if x >= t.hi then t.overflow <- t.overflow + 1
  else
    let width = (t.hi -. t.lo) /. Stdlib.float_of_int t.bins in
    let i =
      Stdlib.min (t.bins - 1) (Stdlib.int_of_float ((x -. t.lo) /. width))
    in
    t.counts.(i) <- t.counts.(i) + 1

let count t = t.total

let counts t = Array.copy t.counts

let underflow t = t.underflow

let overflow t = t.overflow

let bucket_bounds t i =
  if i < 0 || i >= t.bins then invalid_arg "Histogram.bucket_bounds";
  let width = (t.hi -. t.lo) /. Stdlib.float_of_int t.bins in
  (t.lo +. (Stdlib.float_of_int i *. width), t.lo +. (Stdlib.float_of_int (i + 1) *. width))

let pp ?(width = 40) () ppf t =
  let peak = Array.fold_left Stdlib.max 1 t.counts in
  for i = 0 to t.bins - 1 do
    let lo, hi = bucket_bounds t i in
    let bar = t.counts.(i) * width / peak in
    Fmt.pf ppf "[%8.1f, %8.1f) %6d %s@." lo hi t.counts.(i) (String.make bar '#')
  done;
  if t.underflow > 0 then Fmt.pf ppf "underflow %d@." t.underflow;
  if t.overflow > 0 then Fmt.pf ppf "overflow %d@." t.overflow
