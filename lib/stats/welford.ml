type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; min = Float.nan; max = Float.nan }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. Stdlib.float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if t.n = 1 then begin
    t.min <- x;
    t.max <- x
  end
  else begin
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x
  end

let count t = t.n

let mean t = if t.n = 0 then Float.nan else t.mean

let variance t =
  if t.n < 2 then Float.nan else t.m2 /. Stdlib.float_of_int (t.n - 1)

let stddev t = sqrt (variance t)

let min t = t.min

let max t = t.max

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let fa = Stdlib.float_of_int a.n and fb = Stdlib.float_of_int b.n in
    let fn = Stdlib.float_of_int n in
    let delta = b.mean -. a.mean in
    {
      n;
      mean = a.mean +. (delta *. fb /. fn);
      m2 = a.m2 +. b.m2 +. (delta *. delta *. fa *. fb /. fn);
      min = Float.min a.min b.min;
      max = Float.max a.max b.max;
    }

let pp ppf t =
  Fmt.pf ppf "n=%d mean=%.3f sd=%.3f min=%.3f max=%.3f" t.n (mean t) (stddev t)
    t.min t.max
