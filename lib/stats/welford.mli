(** Online mean/variance accumulation (Welford's algorithm).

    Numerically stable single-pass accumulation, used to aggregate
    per-network metrics across the 100 random networks of the paper's
    evaluation without storing all samples. *)

type t

val create : unit -> t

val add : t -> float -> unit

val count : t -> int

(** [mean t] is the running mean; [nan] when empty. *)
val mean : t -> float

(** [variance t] is the unbiased sample variance; [nan] when fewer than
    two samples. *)
val variance : t -> float

val stddev : t -> float

(** [min t] / [max t]; [nan] when empty. *)
val min : t -> float

val max : t -> float

(** [merge a b] is a fresh accumulator equivalent to having seen both
    streams (Chan's parallel combination). *)
val merge : t -> t -> t

val pp : t Fmt.t
