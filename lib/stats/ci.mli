(** Confidence intervals for sample means (Student's t).

    Used by the benchmark harness to report Table 1 aggregates with 95%
    intervals instead of bare standard deviations. *)

type t = { mean : float; lo : float; hi : float; half_width : float }

(** [t95 ~df] is the two-sided 97.5% Student-t quantile for [df] degrees
    of freedom (exact table for small [df], normal approximation past
    120).
    @raise Invalid_argument for [df < 1]. *)
val t95 : df:int -> float

(** [mean_ci95 xs] is the 95% confidence interval of the mean of [xs].
    @raise Invalid_argument for samples of fewer than 2 points. *)
val mean_ci95 : float array -> t

(** [of_welford acc] computes the interval from an accumulator. *)
val of_welford : Welford.t -> t

val pp : t Fmt.t
