type t = { mean : float; lo : float; hi : float; half_width : float }

(* Two-sided 97.5% quantiles of Student's t, df = 1 .. 30, then selected
   larger dfs; beyond 120 the normal quantile is accurate to < 0.3%. *)
let table =
  [|
    12.706; 4.303; 3.182; 2.776; 2.571; 2.447; 2.365; 2.306; 2.262; 2.228;
    2.201; 2.179; 2.160; 2.145; 2.131; 2.120; 2.110; 2.101; 2.093; 2.086;
    2.080; 2.074; 2.069; 2.064; 2.060; 2.056; 2.052; 2.048; 2.045; 2.042;
  |]

let t95 ~df =
  if df < 1 then invalid_arg "Ci.t95: df < 1";
  if df <= 30 then table.(df - 1)
  else if df <= 40 then 2.021
  else if df <= 60 then 2.000
  else if df <= 120 then 1.980
  else 1.960

let of_stats ~n ~mean ~sd =
  if n < 2 then invalid_arg "Ci: need at least two samples";
  let half_width = t95 ~df:(n - 1) *. sd /. sqrt (Stdlib.float_of_int n) in
  { mean; lo = mean -. half_width; hi = mean +. half_width; half_width }

let mean_ci95 xs =
  let acc = Welford.create () in
  Array.iter (Welford.add acc) xs;
  of_stats ~n:(Array.length xs) ~mean:(Welford.mean acc) ~sd:(Welford.stddev acc)

let of_welford acc =
  of_stats ~n:(Welford.count acc) ~mean:(Welford.mean acc)
    ~sd:(Welford.stddev acc)

let pp ppf t = Fmt.pf ppf "%.2f +/- %.2f" t.mean t.half_width
