(** Yao graphs (theta-graphs), the sector-based sparsifiers of
    Hassin–Peleg and Keil–Gutwin that the paper cites as the closest
    relatives of the cone-based idea.

    Space around each node is cut into [k] equal sectors; the node keeps
    a directed edge to its nearest in-range neighbor in each sector, and
    the final graph is the symmetric closure.  Unlike CBTC this needs
    distances and a fixed global sector frame, but it makes a natural
    comparison point: CBTC's cone test is "some neighbor in every cone of
    degree alpha", Yao's is "the nearest neighbor in each of k fixed
    cones". *)

(** [yao ?pool ?cutoff pathloss positions ~k] builds the symmetric
    closure of the k-sector Yao graph restricted to [G_R] edges.  Below
    [cutoff] nodes (default [Geom.Grid.default_brute_cutoff]) and
    without a pool, the brute all-pairs scan is used — it beats the grid
    at small [n] and yields the identical graph; [~cutoff:0] forces the
    grid path.  With [?pool] the per-node sector selections run chunked
    over the pool (bit-identical output for any pool size).
    With a non-trivial [?env] ({!Radio.Env}) the graph is restricted to
    [G_R^env] edges instead (nearest-in-sector stays distance-ordered).
    @raise Invalid_argument when [k < 3]. *)
val yao :
  ?pool:Parallel.Pool.t ->
  ?cutoff:int ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> k:int -> Graphkit.Ugraph.t

(** [yao_out_degree_bound ~k] is the out-degree bound [k] (each sector
    contributes at most one selected edge) — exported for tests. *)
val yao_out_degree_bound : k:int -> int

(** Brute-force O(n²) reference with results identical to the
    grid-backed {!yao} (distance ties resolve to the lowest id on both
    paths); kept for differential tests and benchmarking. *)
module Brute : sig
  val yao :
    Radio.Pathloss.t -> Geom.Vec2.t array -> k:int -> Graphkit.Ugraph.t
end
