let in_range pathloss positions u v =
  Radio.Pathloss.in_range pathloss
    ~dist:(Geom.Vec2.dist positions.(u) positions.(v))

let max_power pathloss positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if in_range pathloss positions u v then Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

let filter_gr pathloss positions ~keep =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if in_range pathloss positions u v && keep u v then
        Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

let rng pathloss positions =
  let n = Array.length positions in
  let dist u v = Geom.Vec2.dist positions.(u) positions.(v) in
  let keep u v =
    let duv = dist u v in
    let blocked = ref false in
    for w = 0 to n - 1 do
      if (not !blocked) && w <> u && w <> v
         && Float.max (dist u w) (dist v w) < duv
      then blocked := true
    done;
    not !blocked
  in
  filter_gr pathloss positions ~keep

let gabriel pathloss positions =
  let n = Array.length positions in
  let dist2 u v = Geom.Vec2.dist2 positions.(u) positions.(v) in
  let keep u v =
    let d2uv = dist2 u v in
    let blocked = ref false in
    for w = 0 to n - 1 do
      if (not !blocked) && w <> u && w <> v
         && dist2 u w +. dist2 v w < d2uv
      then blocked := true
    done;
    not !blocked
  in
  filter_gr pathloss positions ~keep

let euclidean_mst pathloss positions =
  let gr = max_power pathloss positions in
  Graphkit.Mst.forest_graph gr ~weight:(fun u v ->
      Geom.Vec2.dist positions.(u) positions.(v))

let knn pathloss positions ~k =
  if k <= 0 then invalid_arg "Proximity.knn: non-positive k";
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    let in_reach = ref [] in
    for v = 0 to n - 1 do
      if v <> u && in_range pathloss positions u v then
        in_reach := (Geom.Vec2.dist positions.(u) positions.(v), v) :: !in_reach
    done;
    let sorted = List.sort Stdlib.compare !in_reach in
    List.iteri
      (fun i (_, v) -> if i < k then Graphkit.Ugraph.add_edge g u v)
      sorted
  done;
  g

let radius_of ?(full_power = false) pathloss positions g =
  if full_power then
    Array.make (Array.length positions) (Radio.Pathloss.max_range pathloss)
  else
    Array.mapi
      (fun u pos_u ->
        List.fold_left
          (fun acc v -> Float.max acc (Geom.Vec2.dist pos_u positions.(v)))
          0.
          (Graphkit.Ugraph.neighbors g u))
      positions
