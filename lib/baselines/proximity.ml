let in_range pathloss positions u v =
  Radio.Pathloss.in_range pathloss
    ~dist:(Geom.Vec2.dist positions.(u) positions.(v))

(* Non-trivial environments swap the membership predicate (env link
   power against the max-power cap) and inflate the grid probe radius
   to the env's sigma-aware [max_reach]; a trivial/absent env keeps the
   pre-env spellings bit for bit. *)
let real_env = function
  | Some env when not (Radio.Env.is_trivial env) -> Some env
  | _ -> None

let env_in_range env positions u v =
  let pu = positions.(u) and pv = positions.(v) in
  Radio.Env.in_range env ~u ~v ~pu ~pv ~dist:(Geom.Vec2.dist pu pv)

let make_grid pathloss positions =
  Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions

let max_reach pathloss =
  Radio.Pathloss.reach_distance pathloss
    ~power:(Radio.Pathloss.max_power pathloss)

(* Chunked parallel-for over node indices (inline without a pool).  Every
   builder below computes a per-node list into its own slot of a
   preallocated array, then merges sequentially — adjacency sets make
   edge-insertion order irrelevant, so the merge is deterministic for
   any pool size. *)
let for_nodes ?pool n body =
  match pool with
  | Some pool -> Parallel.Pool.iter_chunks pool n body
  | None -> body 0 n

(* [G_R] edges via the spatial index: probe each node's neighborhood and
   keep [v > u] so every pair is examined once, as the brute-force
   triangular loop does. *)
let filter_gr ?pool ?grid ?env pathloss positions ~keep =
  let env = real_env env in
  let n = Array.length positions in
  let grid =
    match grid with Some g -> g | None -> make_grid pathloss positions
  in
  let reach =
    match env with
    | Some env -> Radio.Env.max_reach env
    | None -> max_reach pathloss
  in
  let member u v =
    match env with
    | Some env -> env_in_range env positions u v
    | None -> in_range pathloss positions u v
  in
  let nbrs = Array.make n [] in
  for_nodes ?pool n (fun lo hi ->
      for u = lo to hi - 1 do
        nbrs.(u) <-
          Geom.Grid.fold_in_range grid positions.(u) ~dist:reach ~init:[]
            ~f:(fun acc v ->
              if v > u && member u v && keep u v then v :: acc else acc)
      done);
  let g = Graphkit.Ugraph.create n in
  Array.iteri
    (fun u vs -> List.iter (fun v -> Graphkit.Ugraph.add_edge g u v) vs)
    nbrs;
  g

let brute_max_power pathloss positions =
  let n = Array.length positions in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if in_range pathloss positions u v then Graphkit.Ugraph.add_edge g u v
    done
  done;
  g

let max_power ?pool ?(cutoff = Geom.Grid.default_brute_cutoff) ?env pathloss
    positions =
  match (real_env env, pool) with
  | None, None when Array.length positions < cutoff ->
      brute_max_power pathloss positions
  | env, pool -> filter_gr ?pool ?env pathloss positions ~keep:(fun _ _ -> true)

let rng ?pool ?env pathloss positions =
  let grid = make_grid pathloss positions in
  let dist u v = Geom.Vec2.dist positions.(u) positions.(v) in
  (* a lune witness w has max(d(u,w), d(v,w)) < d(u,v), so it lies within
     d(u,v) of u: probe only that disk *)
  let keep u v =
    let duv = dist u v in
    not
      (Geom.Grid.exists_in_range grid positions.(u) ~dist:duv (fun w ->
           w <> u && w <> v && Float.max (dist u w) (dist v w) < duv))
  in
  filter_gr ?pool ~grid ?env pathloss positions ~keep

let gabriel ?pool ?env pathloss positions =
  let grid = make_grid pathloss positions in
  let dist2 u v = Geom.Vec2.dist2 positions.(u) positions.(v) in
  (* w inside the circle with diameter uv satisfies d(u,w) < d(u,v) *)
  let keep u v =
    let d2uv = dist2 u v in
    not
      (Geom.Grid.exists_in_range grid positions.(u)
         ~dist:(Float.sqrt d2uv)
         (fun w -> w <> u && w <> v && dist2 u w +. dist2 v w < d2uv))
  in
  filter_gr ?pool ~grid ?env pathloss positions ~keep

let euclidean_mst ?env pathloss positions =
  let gr = max_power ?env pathloss positions in
  Graphkit.Mst.forest_graph gr ~weight:(fun u v ->
      Geom.Vec2.dist positions.(u) positions.(v))

let knn ?pool ?env pathloss positions ~k =
  if k <= 0 then invalid_arg "Proximity.knn: non-positive k";
  let env = real_env env in
  let n = Array.length positions in
  let grid = make_grid pathloss positions in
  let reach =
    match env with
    | Some env -> Radio.Env.max_reach env
    | None -> max_reach pathloss
  in
  let member u v =
    match env with
    | Some env -> env_in_range env positions u v
    | None -> in_range pathloss positions u v
  in
  let chosen = Array.make n [] in
  for_nodes ?pool n (fun lo hi ->
      for u = lo to hi - 1 do
        let in_reach =
          Geom.Grid.fold_in_range grid positions.(u) ~dist:reach ~init:[]
            ~f:(fun acc v ->
              if v <> u && member u v then
                (Geom.Vec2.dist positions.(u) positions.(v), v) :: acc
              else acc)
        in
        let sorted = List.sort Stdlib.compare in_reach in
        chosen.(u) <-
          List.filteri (fun i _ -> i < k) sorted |> List.map snd
      done);
  let g = Graphkit.Ugraph.create n in
  Array.iteri
    (fun u vs -> List.iter (fun v -> Graphkit.Ugraph.add_edge g u v) vs)
    chosen;
  g

let radius_of ?(full_power = false) pathloss positions g =
  if full_power then
    Array.make (Array.length positions) (Radio.Pathloss.max_range pathloss)
  else
    Array.mapi
      (fun u pos_u ->
        List.fold_left
          (fun acc v -> Float.max acc (Geom.Vec2.dist pos_u positions.(v)))
          0.
          (Graphkit.Ugraph.neighbors g u))
      positions

module Brute = struct
  let filter_gr pathloss positions ~keep =
    let n = Array.length positions in
    let g = Graphkit.Ugraph.create n in
    for u = 0 to n - 1 do
      for v = u + 1 to n - 1 do
        if in_range pathloss positions u v && keep u v then
          Graphkit.Ugraph.add_edge g u v
      done
    done;
    g

  let max_power = brute_max_power

  let rng pathloss positions =
    let n = Array.length positions in
    let dist u v = Geom.Vec2.dist positions.(u) positions.(v) in
    let keep u v =
      let duv = dist u v in
      let blocked = ref false in
      for w = 0 to n - 1 do
        if (not !blocked) && w <> u && w <> v
           && Float.max (dist u w) (dist v w) < duv
        then blocked := true
      done;
      not !blocked
    in
    filter_gr pathloss positions ~keep

  let gabriel pathloss positions =
    let n = Array.length positions in
    let dist2 u v = Geom.Vec2.dist2 positions.(u) positions.(v) in
    let keep u v =
      let d2uv = dist2 u v in
      let blocked = ref false in
      for w = 0 to n - 1 do
        if (not !blocked) && w <> u && w <> v
           && dist2 u w +. dist2 v w < d2uv
        then blocked := true
      done;
      not !blocked
    in
    filter_gr pathloss positions ~keep

  let knn pathloss positions ~k =
    if k <= 0 then invalid_arg "Proximity.knn: non-positive k";
    let n = Array.length positions in
    let g = Graphkit.Ugraph.create n in
    for u = 0 to n - 1 do
      let in_reach = ref [] in
      for v = 0 to n - 1 do
        if v <> u && in_range pathloss positions u v then
          in_reach :=
            (Geom.Vec2.dist positions.(u) positions.(v), v) :: !in_reach
      done;
      let sorted = List.sort Stdlib.compare !in_reach in
      List.iteri
        (fun i (_, v) -> if i < k then Graphkit.Ugraph.add_edge g u v)
        sorted
    done;
    g
end
