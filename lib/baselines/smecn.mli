(** The minimum-energy subgraph of Li and Halpern ("Minimum Energy Mobile
    Wireless Networks Revisited", ICC 2001 — reference \[9\] of the
    paper, improving Rodoplu–Meng), as a position-based comparator.

    An edge [(u, v)] of [G_R] is kept unless some witness [w] makes the
    two-hop relay strictly cheaper under the energy model:
    [cost(u,w) + cost(w,v) < cost(u,v)] with
    [cost(a,b) = p(d(a,b)) + overhead].  The resulting subgraph contains
    a minimum-energy path between every connected pair (power stretch
    exactly 1 under the same energy model) — the property the paper
    contrasts with CBTC's per-node power minimization. *)

(** [smecn ?env energy positions] builds the minimum-energy subgraph of
    [G_R] — of [G_R^env] with a non-trivial [?env] ({!Radio.Env}); the
    relay-cost witness stays under the distance-based energy model. *)
val smecn :
  ?env:Radio.Env.t -> Radio.Energy.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t
