let smecn ?env (energy : Radio.Energy.t) positions =
  let env =
    match env with
    | Some env when not (Radio.Env.is_trivial env) -> Some env
    | _ -> None
  in
  let n = Array.length positions in
  let pathloss = energy.Radio.Energy.pathloss in
  let cost u v =
    Radio.Energy.link_cost energy (Geom.Vec2.dist positions.(u) positions.(v))
  in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      let dist = Geom.Vec2.dist positions.(u) positions.(v) in
      let member =
        match env with
        | Some env ->
            Radio.Env.in_range env ~u ~v ~pu:positions.(u) ~pv:positions.(v)
              ~dist
        | None -> Radio.Pathloss.in_range pathloss ~dist
      in
      if member then begin
        let direct = cost u v in
        let blocked = ref false in
        for w = 0 to n - 1 do
          if (not !blocked) && w <> u && w <> v
             && cost u w +. cost w v < direct
          then blocked := true
        done;
        if not !blocked then Graphkit.Ugraph.add_edge g u v
      end
    done
  done;
  g
