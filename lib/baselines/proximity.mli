(** Comparator topologies.

    [max_power] is the paper's Table 1 baseline (no topology control).
    The proximity-graph families — Relative Neighborhood Graph, Gabriel
    graph, Euclidean MST, symmetric k-nearest-neighbors — are the
    related-work structures the paper cites (Toussaint; Jaromczyk and
    Toussaint) and serve as reference points in the examples and
    ablations.  All are restricted to edges of [G_R] (pairs within radio
    range), so they are implementable topologies.

    Constructions are accelerated by a [Geom.Grid] spatial index (range
    and witness queries probe only nearby cells); the brute-force
    reference implementations live in {!Brute} and are property-tested
    to produce identical graphs.

    Per-node work is independent, so builders accept [?pool] and then
    run chunked over a [Parallel.Pool]: each chunk fills only its own
    slots of a per-node array, and a sequential merge into the set-based
    adjacency yields a graph bit-identical to the sequential pass for
    any pool size.

    All builders accept [?env] ({!Radio.Env}): with a non-trivial
    environment the underlying edge set becomes [G_R^env] (grid probes
    use the sigma-aware inflated radius, the exact env link-power
    predicate decides membership) while the geometric witness criteria
    (lune, diametral circle, nearest-k) stay distance-based.  Omitted
    or trivial, the pre-env code path runs bit-identically. *)

(** [max_power ?pool ?cutoff pathloss positions] is [G_R].  Below
    [cutoff] nodes (default [Geom.Grid.default_brute_cutoff]) and
    without a pool, the brute triangular scan is used — faster at small
    [n], identical output.  [~cutoff:0] forces the grid path. *)
val max_power :
  ?pool:Parallel.Pool.t ->
  ?cutoff:int ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

(** [rng ?pool pathloss positions]: keep [(u,v)] of [G_R] unless some
    witness [w] satisfies [max(d(u,w), d(v,w)) < d(u,v)] (lune
    criterion). *)
val rng :
  ?pool:Parallel.Pool.t ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

(** [gabriel ?pool pathloss positions]: keep [(u,v)] of [G_R] unless
    some [w] lies strictly inside the circle with diameter [uv]
    ([d2(u,w) + d2(v,w) < d2(u,v)]). *)
val gabriel :
  ?pool:Parallel.Pool.t ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

(** [euclidean_mst pathloss positions]: minimum spanning forest of [G_R]
    under Euclidean edge lengths.  (Kruskal is inherently sequential, so
    no [?pool] here.) *)
val euclidean_mst :
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

(** [knn ?pool pathloss positions ~k]: symmetric closure of each node's
    [k] nearest in-range neighbors. *)
val knn :
  ?pool:Parallel.Pool.t ->
  ?env:Radio.Env.t ->
  Radio.Pathloss.t -> Geom.Vec2.t array -> k:int -> Graphkit.Ugraph.t

(** [radius_of pathloss positions g] is the per-node transmission radius
    implied by a topology: distance to the farthest [g]-neighbor, except
    that {!max_power}'s semantics (every node shouting at full power) is
    recovered with [~full_power:true], which reports [R] for every node
    as the paper's Table 1 does. *)
val radius_of :
  ?full_power:bool ->
  Radio.Pathloss.t ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  float array

(** Brute-force O(n²)/O(n³) reference implementations with results
    identical to the grid-backed ones above; kept for differential tests
    and as the [perf] benchmark baseline. *)
module Brute : sig
  val max_power :
    Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

  val rng : Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

  val gabriel : Radio.Pathloss.t -> Geom.Vec2.t array -> Graphkit.Ugraph.t

  val knn :
    Radio.Pathloss.t -> Geom.Vec2.t array -> k:int -> Graphkit.Ugraph.t
end
