let yao_out_degree_bound ~k = k

let yao pathloss positions ~k =
  if k < 3 then invalid_arg "Yao.yao: k < 3";
  let n = Array.length positions in
  let sector_width = Geom.Angle.two_pi /. Stdlib.float_of_int k in
  let g = Graphkit.Ugraph.create n in
  for u = 0 to n - 1 do
    (* nearest in-range neighbor per sector *)
    let best = Array.make k None in
    for v = 0 to n - 1 do
      if v <> u then begin
        let dist = Geom.Vec2.dist positions.(u) positions.(v) in
        if Radio.Pathloss.in_range pathloss ~dist then begin
          let dir = Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(v) in
          let sector =
            Stdlib.min (k - 1) (Stdlib.int_of_float (dir /. sector_width))
          in
          match best.(sector) with
          | Some (d, _) when d <= dist -> ()
          | Some _ | None -> best.(sector) <- Some (dist, v)
        end
      end
    done;
    Array.iter
      (function Some (_, v) -> Graphkit.Ugraph.add_edge g u v | None -> ())
      best
  done;
  g
