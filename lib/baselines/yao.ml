let yao_out_degree_bound ~k = k

(* Per-sector selection for one node over a candidate id list.  Ties on
   distance keep the lowest-id node: candidates are examined in
   increasing id, matching the brute-force scan's order. *)
let select_sectors ?env pathloss positions u ~k ~sector_width best candidates =
  List.iter
    (fun v ->
      if v <> u then begin
        let dist = Geom.Vec2.dist positions.(u) positions.(v) in
        let member =
          match env with
          | Some env ->
              Radio.Env.in_range env ~u ~v ~pu:positions.(u)
                ~pv:positions.(v) ~dist
          | None -> Radio.Pathloss.in_range pathloss ~dist
        in
        if member then begin
          let dir =
            Geom.Vec2.direction ~from:positions.(u) ~toward:positions.(v)
          in
          let sector =
            Stdlib.min (k - 1) (Stdlib.int_of_float (dir /. sector_width))
          in
          match best.(sector) with
          | Some (d, _) when d <= dist -> ()
          | Some _ | None -> best.(sector) <- Some (dist, v)
        end
      end)
    candidates

let build ?pool ?env pathloss positions ~k ~candidates_of =
  if k < 3 then invalid_arg "Yao.yao: k < 3";
  let n = Array.length positions in
  let sector_width = Geom.Angle.two_pi /. Stdlib.float_of_int k in
  (* selections are per-node-independent: each chunk writes only its own
     slots, and the final merge into set-based adjacency is
     order-insensitive, so the graph is the same for any pool size *)
  let selected = Array.make n [] in
  let body lo hi =
    for u = lo to hi - 1 do
      let best = Array.make k None in
      select_sectors ?env pathloss positions u ~k ~sector_width best
        (candidates_of u);
      selected.(u) <-
        Array.fold_left
          (fun acc -> function Some (_, v) -> v :: acc | None -> acc)
          [] best
    done
  in
  (match pool with
  | Some pool -> Parallel.Pool.iter_chunks pool n body
  | None -> body 0 n);
  let g = Graphkit.Ugraph.create n in
  Array.iteri
    (fun u vs -> List.iter (fun v -> Graphkit.Ugraph.add_edge g u v) vs)
    selected;
  g

let yao ?pool ?(cutoff = Geom.Grid.default_brute_cutoff) ?env pathloss
    positions ~k =
  let env =
    match env with
    | Some env when not (Radio.Env.is_trivial env) -> Some env
    | _ -> None
  in
  let n = Array.length positions in
  let inline = match pool with None -> true | Some _ -> false in
  if n < cutoff && inline then
    let all = List.init n Fun.id in
    build ?env pathloss positions ~k ~candidates_of:(fun _ -> all)
  else begin
    let grid =
      Geom.Grid.create ~range:(Radio.Pathloss.max_range pathloss) positions
    in
    let reach =
      match env with
      | Some env -> Radio.Env.max_reach env
      | None ->
          Radio.Pathloss.reach_distance pathloss
            ~power:(Radio.Pathloss.max_power pathloss)
    in
    build ?pool ?env pathloss positions ~k ~candidates_of:(fun u ->
        List.sort Int.compare
          (Geom.Grid.fold_in_range grid positions.(u) ~dist:reach ~init:[]
             ~f:(fun acc v -> if v = u then acc else v :: acc)))
  end

module Brute = struct
  let yao pathloss positions ~k =
    let all = List.init (Array.length positions) Fun.id in
    build pathloss positions ~k ~candidates_of:(fun _ -> all)
end
