(** Congestion proxy: load concentration under many concurrent flows.

    The paper's discussion warns that removing edges "may result in more
    congestion and hence worse throughput".  This module quantifies that:
    route a batch of unicast flows over a topology (minimum-hop or
    minimum-energy paths) and measure how load concentrates on nodes and
    links. *)

type policy = Min_hop | Min_energy of Radio.Energy.t

type load = {
  flows_routed : int;  (** flows whose endpoints were connected *)
  flows_failed : int;
  max_node_load : int;  (** relayed+terminated flows at the busiest node *)
  avg_node_load : float;
  max_link_load : int;  (** flows through the busiest link *)
  total_hops : int;
}

(** [measure ?policy positions g ~pairs] routes every pair and aggregates
    the per-node and per-link flow counts.  Default policy [Min_hop]. *)
val measure :
  ?policy:policy ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  pairs:(int * int) list ->
  load
