(** Greedy geographic forwarding.

    Each hop forwards to the neighbor strictly closest to the destination
    (closer than the current node); the route fails at a {e local
    minimum} — a node with no closer neighbor.  Greedy routing is the
    standard stateless routing companion of topology control, and its
    success rate is a quality measure for a controlled topology. *)

type result =
  | Delivered of int list  (** full path, source and destination inclusive *)
  | Stuck of { at : int; path : int list }
      (** local minimum reached at [at]; [path] is the prefix walked *)

(** [route g positions ~src ~dst] runs greedy forwarding on topology [g].
    Terminates: each hop strictly decreases distance to [dst]. *)
val route : Graphkit.Ugraph.t -> Geom.Vec2.t array -> src:int -> dst:int -> result

type stats = {
  attempts : int;
  delivered : int;
  avg_hops : float;  (** over delivered routes *)
  avg_length_ratio : float;
      (** delivered route length over straight-line distance *)
}

(** [evaluate g positions ~pairs] routes each (src, dst) pair and
    aggregates. *)
val evaluate :
  Graphkit.Ugraph.t -> Geom.Vec2.t array -> pairs:(int * int) list -> stats

(** [random_pairs prng ~n ~count] draws distinct random pairs. *)
val random_pairs : Prng.t -> n:int -> count:int -> (int * int) list
