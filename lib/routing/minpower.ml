let link_cost energy positions u v =
  Radio.Energy.link_cost energy (Geom.Vec2.dist positions.(u) positions.(v))

let tree energy positions g ~src =
  Graphkit.Shortest.dijkstra_tree g ~cost:(link_cost energy positions) ~src

let route energy positions g ~src ~dst =
  let dist, prev = tree energy positions g ~src in
  match Graphkit.Shortest.path_to ~prev ~src dst with
  | None -> None
  | Some path -> Some (path, dist.(dst))

let path_cost energy positions path =
  let rec go acc = function
    | a :: (b :: _ as rest) -> go (acc +. link_cost energy positions a b) rest
    | [ _ ] | [] -> acc
  in
  go 0. path
