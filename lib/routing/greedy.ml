type result =
  | Delivered of int list
  | Stuck of { at : int; path : int list }

let route g positions ~src ~dst =
  let n = Graphkit.Ugraph.nb_nodes g in
  if src < 0 || src >= n || dst < 0 || dst >= n then
    invalid_arg "Greedy.route: node out of range";
  let dist_to_dst u = Geom.Vec2.dist positions.(u) positions.(dst) in
  let rec walk u acc =
    if u = dst then Delivered (List.rev (dst :: acc))
    else begin
      let du = dist_to_dst u in
      let next =
        List.fold_left
          (fun best v ->
            let dv = dist_to_dst v in
            match best with
            | Some (bd, _) when bd <= dv -> best
            | _ -> if dv < du then Some (dv, v) else best)
          None
          (Graphkit.Ugraph.neighbors g u)
      in
      match next with
      | Some (_, v) -> walk v (u :: acc)
      | None -> Stuck { at = u; path = List.rev (u :: acc) }
    end
  in
  walk src []

type stats = {
  attempts : int;
  delivered : int;
  avg_hops : float;
  avg_length_ratio : float;
}

let path_length positions path =
  let rec go acc = function
    | a :: (b :: _ as rest) ->
        go (acc +. Geom.Vec2.dist positions.(a) positions.(b)) rest
    | [ _ ] | [] -> acc
  in
  go 0. path

let evaluate g positions ~pairs =
  let attempts = List.length pairs in
  let delivered = ref 0 in
  let hops = ref 0 in
  let ratio_sum = ref 0. in
  List.iter
    (fun (src, dst) ->
      match route g positions ~src ~dst with
      | Delivered path ->
          incr delivered;
          hops := !hops + List.length path - 1;
          let direct = Geom.Vec2.dist positions.(src) positions.(dst) in
          if direct > 0. then
            ratio_sum := !ratio_sum +. (path_length positions path /. direct)
      | Stuck _ -> ())
    pairs;
  {
    attempts;
    delivered = !delivered;
    avg_hops =
      (if !delivered = 0 then 0.
       else Stdlib.float_of_int !hops /. Stdlib.float_of_int !delivered);
    avg_length_ratio =
      (if !delivered = 0 then 0.
       else !ratio_sum /. Stdlib.float_of_int !delivered);
  }

let random_pairs prng ~n ~count =
  if n < 2 then invalid_arg "Greedy.random_pairs: need at least two nodes";
  List.init count (fun _ ->
      let src = Prng.int prng n in
      let rec draw () =
        let dst = Prng.int prng n in
        if dst = src then draw () else dst
      in
      (src, draw ()))
