(** Minimum-energy routing over a controlled topology.

    Routes along least-total-energy paths (Dijkstra with
    [Radio.Energy.link_cost] edge weights), the routing model under which
    the paper's power-stretch competitiveness statement is made. *)

(** [route energy positions g ~src ~dst] is the least-energy path from
    [src] to [dst] in [g] with its total cost, or [None] when
    disconnected. *)
val route :
  Radio.Energy.t ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  src:int ->
  dst:int ->
  (int list * float) option

(** [tree energy positions g ~src] is the least-energy route tree rooted
    at [src]: per-node cost and predecessor arrays (see
    {!Graphkit.Shortest.dijkstra_tree}).  Useful for many-to-one traffic
    (data gathering toward a sink). *)
val tree :
  Radio.Energy.t ->
  Geom.Vec2.t array ->
  Graphkit.Ugraph.t ->
  src:int ->
  float array * int array

(** [path_cost energy positions path] sums link costs along a node path. *)
val path_cost : Radio.Energy.t -> Geom.Vec2.t array -> int list -> float
