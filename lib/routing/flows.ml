type policy = Min_hop | Min_energy of Radio.Energy.t

type load = {
  flows_routed : int;
  flows_failed : int;
  max_node_load : int;
  avg_node_load : float;
  max_link_load : int;
  total_hops : int;
}

let bfs_path g ~src ~dst =
  let n = Graphkit.Ugraph.nb_nodes g in
  let prev = Array.make n (-2) in
  prev.(src) <- -1;
  let queue = Queue.create () in
  Queue.add src queue;
  let found = ref (src = dst) in
  while (not !found) && not (Queue.is_empty queue) do
    let u = Queue.pop queue in
    List.iter
      (fun v ->
        if prev.(v) = -2 then begin
          prev.(v) <- u;
          if v = dst then found := true else Queue.add v queue
        end)
      (Graphkit.Ugraph.neighbors g u)
  done;
  if not !found then None
  else begin
    let rec build acc u = if u = src then src :: acc else build (u :: acc) prev.(u) in
    Some (build [] dst)
  end

let path_of policy positions g ~src ~dst =
  match policy with
  | Min_hop -> bfs_path g ~src ~dst
  | Min_energy energy ->
      Option.map fst (Minpower.route energy positions g ~src ~dst)

let measure ?(policy = Min_hop) positions g ~pairs =
  let n = Graphkit.Ugraph.nb_nodes g in
  let node_load = Array.make n 0 in
  let link_load = Hashtbl.create 64 in
  let routed = ref 0 and failed = ref 0 and total_hops = ref 0 in
  List.iter
    (fun (src, dst) ->
      match path_of policy positions g ~src ~dst with
      | None -> incr failed
      | Some path ->
          incr routed;
          total_hops := !total_hops + List.length path - 1;
          List.iter (fun u -> node_load.(u) <- node_load.(u) + 1) path;
          let rec links = function
            | a :: (b :: _ as rest) ->
                let key = (Stdlib.min a b, Stdlib.max a b) in
                Hashtbl.replace link_load key
                  (1 + Option.value ~default:0 (Hashtbl.find_opt link_load key));
                links rest
            | [ _ ] | [] -> ()
          in
          links path)
    pairs;
  let max_link_load = Hashtbl.fold (fun _ c acc -> Stdlib.max c acc) link_load 0 in
  {
    flows_routed = !routed;
    flows_failed = !failed;
    max_node_load = Array.fold_left Stdlib.max 0 node_load;
    avg_node_load =
      (if n = 0 then 0.
       else
         Stdlib.float_of_int (Array.fold_left ( + ) 0 node_load)
         /. Stdlib.float_of_int n);
    max_link_load;
    total_hops = !total_hops;
  }
